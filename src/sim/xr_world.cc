#include "sim/xr_world.h"

#include "common/check.h"
#include "common/rng.h"
#include "sim/crowd_simulator.h"

namespace after {

XrWorld XrWorld::FromRecorded(std::vector<Interface> interfaces,
                              std::vector<std::vector<Vec2>> trajectory,
                              double body_radius) {
  XrWorld world;
  for (const auto& step : trajectory)
    AFTER_CHECK_EQ(step.size(), interfaces.size());
  world.interfaces_ = std::move(interfaces);
  world.trajectory_ = std::move(trajectory);
  world.body_radius_ = body_radius;
  return world;
}

XrWorld XrWorld::Generate(const Config& config, Rng& rng) {
  AFTER_CHECK_GE(config.num_users, 1);
  AFTER_CHECK_GE(config.num_steps, 1);

  XrWorld world;
  world.body_radius_ = config.body_radius;
  world.interfaces_.resize(config.num_users);
  const int num_vr = static_cast<int>(config.vr_fraction *
                                      static_cast<double>(config.num_users));
  for (int u = 0; u < config.num_users; ++u)
    world.interfaces_[u] = u < num_vr ? Interface::kVR : Interface::kMR;
  rng.Shuffle(world.interfaces_);

  // Gathering spots: points of social attraction inside the room.
  std::vector<Vec2> spots;
  for (int s = 0; s < config.num_gathering_spots; ++s) {
    spots.emplace_back(rng.Uniform(0.15, 0.85) * config.room_side,
                       rng.Uniform(0.15, 0.85) * config.room_side);
  }

  CrowdSimulator sim(config.time_step);
  CrowdSimulator::AgentParams params;
  params.radius = config.body_radius;
  params.max_speed = config.max_speed;

  auto random_waypoint = [&]() {
    if (!spots.empty() && rng.Bernoulli(config.gathering_bias)) {
      const Vec2& spot = spots[rng.UniformInt(static_cast<int>(spots.size()))];
      // Scatter around the spot so agents form loose clusters.
      return Vec2(spot.x + rng.Normal(0.0, 0.08 * config.room_side),
                  spot.y + rng.Normal(0.0, 0.08 * config.room_side));
    }
    return Vec2(rng.Uniform(0.0, config.room_side),
                rng.Uniform(0.0, config.room_side));
  };

  for (int u = 0; u < config.num_users; ++u) {
    const Vec2 start(rng.Uniform(0.0, config.room_side),
                     rng.Uniform(0.0, config.room_side));
    sim.AddAgent(start, params);
    sim.SetGoal(u, random_waypoint());
  }

  world.trajectory_.reserve(config.num_steps);
  for (int t = 0; t < config.num_steps; ++t) {
    std::vector<Vec2> positions(config.num_users);
    for (int u = 0; u < config.num_users; ++u) positions[u] = sim.Position(u);
    world.trajectory_.push_back(std::move(positions));
    if (t + 1 == config.num_steps) break;
    // Re-target agents that arrived; occasionally change mind.
    for (int u = 0; u < config.num_users; ++u) {
      if (sim.ReachedGoal(u, 0.3) || rng.Bernoulli(0.02))
        sim.SetGoal(u, random_waypoint());
    }
    sim.Step();
  }
  return world;
}

}  // namespace after
