#ifndef AFTER_SIM_XR_WORLD_H_
#define AFTER_SIM_XR_WORLD_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace after {

class Rng;

/// XR interface used by a participant (Sec. III-A): MR users are in-person
/// participants who are physically present and therefore always rendered
/// for co-located MR viewers; VR users are remote.
enum class Interface { kVR, kMR };

/// The simulated social-XR conferencing room: participants with their
/// interfaces and collision-free trajectories produced by the ORCA crowd
/// simulator (the paper's RVO2 substitute). Agents mingle by repeatedly
/// walking to random waypoints, biased toward their social group's
/// gathering spots.
class XrWorld {
 public:
  struct Config {
    int num_users = 200;
    /// Proportion of remote (VR) participants; the rest are MR.
    double vr_fraction = 0.5;
    /// Number of recorded time steps T+1 (t = 0..T).
    int num_steps = 101;
    /// Side length of the square conferencing room, meters.
    double room_side = 10.0;
    /// Seconds per time step.
    double time_step = 0.5;
    /// Body radius used by both collision avoidance and occlusion arcs.
    double body_radius = 0.25;
    /// Number of "gathering spots" agents are attracted to (0 = pure
    /// random waypoints).
    int num_gathering_spots = 4;
    /// Probability a new waypoint is a gathering spot vs. uniform.
    double gathering_bias = 0.6;
    /// Walking speed, m/s.
    double max_speed = 1.2;
  };

  /// Simulates a conferencing session. Interfaces are assigned uniformly
  /// at random according to vr_fraction.
  static XrWorld Generate(const Config& config, Rng& rng);

  /// Wraps pre-recorded interfaces and trajectories (dataset loading,
  /// tests with hand-crafted scenes).
  static XrWorld FromRecorded(std::vector<Interface> interfaces,
                              std::vector<std::vector<Vec2>> trajectory,
                              double body_radius);

  int num_users() const { return static_cast<int>(interfaces_.size()); }
  int num_steps() const { return static_cast<int>(trajectory_.size()); }

  const std::vector<Interface>& interfaces() const { return interfaces_; }
  Interface interface_of(int user) const { return interfaces_[user]; }

  /// trajectory()[t][u] is user u's position at time t (tau_t^u).
  const std::vector<std::vector<Vec2>>& trajectory() const {
    return trajectory_;
  }
  const std::vector<Vec2>& PositionsAt(int t) const { return trajectory_[t]; }

  double body_radius() const { return body_radius_; }

 private:
  std::vector<Interface> interfaces_;
  std::vector<std::vector<Vec2>> trajectory_;
  double body_radius_ = 0.25;
};

}  // namespace after

#endif  // AFTER_SIM_XR_WORLD_H_
