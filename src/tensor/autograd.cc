#include "tensor/autograd.h"

#include <cmath>
#include <unordered_set>

namespace after {
namespace {

void EnsureGrad(Variable::Node& node) {
  if (node.grad.rows() != node.value.rows() ||
      node.grad.cols() != node.value.cols()) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
}

}  // namespace

Variable Variable::Constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Variable(std::move(node));
}

Variable Variable::Parameter(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  EnsureGrad(*node);
  return Variable(std::move(node));
}

void Variable::SetValue(Matrix value) {
  AFTER_CHECK(node_ != nullptr);
  AFTER_CHECK(node_->parents.empty());
  node_->value = std::move(value);
  EnsureGrad(*node_);
}

void Variable::ZeroGrad() {
  AFTER_CHECK(node_ != nullptr);
  EnsureGrad(*node_);
  node_->grad.Fill(0.0);
}

Variable Variable::MakeOp(Matrix value,
                          std::vector<std::shared_ptr<Node>> parents,
                          std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->backward = std::move(backward);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return Variable(std::move(node));
}

void Variable::Backward() {
  AFTER_CHECK(node_ != nullptr);
  AFTER_CHECK_EQ(node_->value.rows(), 1);
  AFTER_CHECK_EQ(node_->value.cols(), 1);

  // Iterative DFS topological sort (recursion would overflow on long
  // BPTT chains over T=100 time steps).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  // Intermediate (non-leaf) grads are scratch space for this pass and are
  // zeroed; leaf grads accumulate across Backward() calls until ZeroGrad.
  for (Node* node : order) {
    EnsureGrad(*node);
    if (!node->parents.empty()) node->grad.Fill(0.0);
  }
  node_->grad.Fill(0.0);
  node_->grad.At(0, 0) = 1.0;

  // `order` is children-before-parents reversed; iterate from the end
  // (root first).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->requires_grad) node->backward(*node);
  }
}

Variable operator+(const Variable& a, const Variable& b) {
  AFTER_CHECK_EQ(a.rows(), b.rows());
  AFTER_CHECK_EQ(a.cols(), b.cols());
  auto pa = a.node_;
  auto pb = b.node_;
  return Variable::MakeOp(a.value() + b.value(), {pa, pb},
                          [pa, pb](Variable::Node& out) {
                            if (pa->requires_grad) pa->grad += out.grad;
                            if (pb->requires_grad) pb->grad += out.grad;
                          });
}

Variable operator-(const Variable& a, const Variable& b) {
  AFTER_CHECK_EQ(a.rows(), b.rows());
  AFTER_CHECK_EQ(a.cols(), b.cols());
  auto pa = a.node_;
  auto pb = b.node_;
  return Variable::MakeOp(a.value() - b.value(), {pa, pb},
                          [pa, pb](Variable::Node& out) {
                            if (pa->requires_grad) pa->grad += out.grad;
                            if (pb->requires_grad) pb->grad -= out.grad;
                          });
}

Variable operator*(double scalar, const Variable& a) {
  auto pa = a.node_;
  return Variable::MakeOp(a.value() * scalar, {pa},
                          [pa, scalar](Variable::Node& out) {
                            if (pa->requires_grad)
                              pa->grad += out.grad * scalar;
                          });
}

Variable Variable::MatMul(const Variable& a, const Variable& b) {
  auto pa = a.node_;
  auto pb = b.node_;
  return MakeOp(a.value().MatMul(b.value()), {pa, pb},
                [pa, pb](Node& out) {
                  if (pa->requires_grad)
                    pa->grad += out.grad.MatMul(pb->value.Transposed());
                  if (pb->requires_grad)
                    pb->grad += pa->value.Transposed().MatMul(out.grad);
                });
}

Variable Variable::Hadamard(const Variable& a, const Variable& b) {
  auto pa = a.node_;
  auto pb = b.node_;
  return MakeOp(a.value().Hadamard(b.value()), {pa, pb},
                [pa, pb](Node& out) {
                  if (pa->requires_grad)
                    pa->grad += out.grad.Hadamard(pb->value);
                  if (pb->requires_grad)
                    pb->grad += out.grad.Hadamard(pa->value);
                });
}

Variable Variable::Relu(const Variable& a) {
  auto pa = a.node_;
  return MakeOp(a.value().Map([](double x) { return x > 0.0 ? x : 0.0; }),
                {pa}, [pa](Node& out) {
                  if (!pa->requires_grad) return;
                  for (int i = 0; i < pa->value.size(); ++i) {
                    if (pa->value[static_cast<size_t>(i)] > 0.0) {
                      pa->grad[static_cast<size_t>(i)] +=
                          out.grad[static_cast<size_t>(i)];
                    }
                  }
                });
}

Variable Variable::Sigmoid(const Variable& a) {
  auto pa = a.node_;
  Matrix value =
      a.value().Map([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return MakeOp(value, {pa}, [pa](Node& out) {
    if (!pa->requires_grad) return;
    for (int i = 0; i < out.value.size(); ++i) {
      const double s = out.value[static_cast<size_t>(i)];
      pa->grad[static_cast<size_t>(i)] +=
          out.grad[static_cast<size_t>(i)] * s * (1.0 - s);
    }
  });
}

Variable Variable::Tanh(const Variable& a) {
  auto pa = a.node_;
  Matrix value = a.value().Map([](double x) { return std::tanh(x); });
  return MakeOp(value, {pa}, [pa](Node& out) {
    if (!pa->requires_grad) return;
    for (int i = 0; i < out.value.size(); ++i) {
      const double t = out.value[static_cast<size_t>(i)];
      pa->grad[static_cast<size_t>(i)] +=
          out.grad[static_cast<size_t>(i)] * (1.0 - t * t);
    }
  });
}

Variable Variable::AddScalar(const Variable& a, double scalar) {
  auto pa = a.node_;
  return MakeOp(a.value().Map([scalar](double x) { return x + scalar; }),
                {pa}, [pa](Node& out) {
                  if (pa->requires_grad) pa->grad += out.grad;
                });
}

Variable Variable::Sum(const Variable& a) {
  auto pa = a.node_;
  Matrix value(1, 1);
  value.At(0, 0) = a.value().Sum();
  return MakeOp(value, {pa}, [pa](Node& out) {
    if (!pa->requires_grad) return;
    const double g = out.grad.At(0, 0);
    for (int i = 0; i < pa->grad.size(); ++i)
      pa->grad[static_cast<size_t>(i)] += g;
  });
}

Variable Variable::Transpose(const Variable& a) {
  auto pa = a.node_;
  return MakeOp(a.value().Transposed(), {pa}, [pa](Node& out) {
    if (pa->requires_grad) pa->grad += out.grad.Transposed();
  });
}

Variable Variable::ConcatCols(const Variable& a, const Variable& b) {
  AFTER_CHECK_EQ(a.rows(), b.rows());
  auto pa = a.node_;
  auto pb = b.node_;
  const int a_cols = a.cols();
  const int b_cols = b.cols();
  return MakeOp(a.value().ConcatCols(b.value()), {pa, pb},
                [pa, pb, a_cols, b_cols](Node& out) {
                  if (pa->requires_grad)
                    pa->grad += out.grad.SliceCols(0, a_cols);
                  if (pb->requires_grad)
                    pb->grad += out.grad.SliceCols(a_cols, b_cols);
                });
}

Variable Variable::SliceCols(const Variable& a, int begin, int count) {
  auto pa = a.node_;
  return MakeOp(a.value().SliceCols(begin, count), {pa},
                [pa, begin, count](Node& out) {
                  if (!pa->requires_grad) return;
                  for (int r = 0; r < out.grad.rows(); ++r)
                    for (int c = 0; c < count; ++c)
                      pa->grad.At(r, begin + c) += out.grad.At(r, c);
                });
}

Variable Variable::AddRowBroadcast(const Variable& a, const Variable& row) {
  AFTER_CHECK_EQ(row.rows(), 1);
  AFTER_CHECK_EQ(a.cols(), row.cols());
  auto pa = a.node_;
  auto prow = row.node_;
  Matrix value = a.value();
  for (int r = 0; r < value.rows(); ++r)
    for (int c = 0; c < value.cols(); ++c)
      value.At(r, c) += row.value().At(0, c);
  return MakeOp(value, {pa, prow}, [pa, prow](Node& out) {
    if (pa->requires_grad) pa->grad += out.grad;
    if (prow->requires_grad) {
      for (int r = 0; r < out.grad.rows(); ++r)
        for (int c = 0; c < out.grad.cols(); ++c)
          prow->grad.At(0, c) += out.grad.At(r, c);
    }
  });
}

Matrix NumericalGradient(const std::function<double(const Matrix&)>& fn,
                         const Matrix& point, double epsilon) {
  Matrix grad(point.rows(), point.cols());
  Matrix probe = point;
  for (int i = 0; i < point.size(); ++i) {
    const double original = probe[static_cast<size_t>(i)];
    probe[static_cast<size_t>(i)] = original + epsilon;
    const double plus = fn(probe);
    probe[static_cast<size_t>(i)] = original - epsilon;
    const double minus = fn(probe);
    probe[static_cast<size_t>(i)] = original;
    grad[static_cast<size_t>(i)] = (plus - minus) / (2.0 * epsilon);
  }
  return grad;
}

}  // namespace after
