#ifndef AFTER_TENSOR_AUTOGRAD_H_
#define AFTER_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace after {

/// Reverse-mode automatic differentiation over Matrix values.
///
/// A `Variable` is a lightweight handle to a node in a dynamically built
/// computation tape. Operations (MatMul, Relu, ...) record a backward
/// closure; calling `Backward()` on a scalar output runs the tape in
/// reverse topological order and accumulates gradients into every node
/// with `requires_grad`. This is the training substrate for POSHGNN and
/// the learned baselines (TGCN, DCRNN, GraFrank).
class Variable {
 public:
  struct Node {
    Matrix value;
    Matrix grad;
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    // Propagates `grad` of this node into the parents' grads.
    std::function<void(Node&)> backward;
  };

  /// Invalid/empty variable.
  Variable() = default;

  /// Leaf with no gradient tracking (inputs, adjacency matrices, masks).
  static Variable Constant(Matrix value);

  /// Leaf with gradient tracking (trainable parameters).
  static Variable Parameter(Matrix value);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }

  /// Overwrites the value of a leaf (parameter update). The tape built on
  /// the old value must no longer be used.
  void SetValue(Matrix value);

  /// Zeroes this node's gradient accumulator.
  void ZeroGrad();

  /// Runs backpropagation from this node, which must hold a 1x1 scalar.
  /// Gradients accumulate into every reachable `requires_grad` node.
  void Backward();

  std::shared_ptr<Node> node() const { return node_; }

  // ---- Differentiable operations ------------------------------------

  /// Element-wise sum. Shapes must match.
  friend Variable operator+(const Variable& a, const Variable& b);
  /// Element-wise difference.
  friend Variable operator-(const Variable& a, const Variable& b);
  /// Scalar scale.
  friend Variable operator*(double scalar, const Variable& a);

  /// Matrix product.
  static Variable MatMul(const Variable& a, const Variable& b);
  /// Element-wise product.
  static Variable Hadamard(const Variable& a, const Variable& b);
  /// max(x, 0).
  static Variable Relu(const Variable& a);
  /// Logistic sigmoid.
  static Variable Sigmoid(const Variable& a);
  /// Hyperbolic tangent.
  static Variable Tanh(const Variable& a);
  /// Adds `scalar` to every element.
  static Variable AddScalar(const Variable& a, double scalar);
  /// Sum of all elements as a 1x1 variable.
  static Variable Sum(const Variable& a);
  /// Transpose.
  static Variable Transpose(const Variable& a);
  /// Column-wise concatenation [a | b]. Row counts must match.
  static Variable ConcatCols(const Variable& a, const Variable& b);
  /// Columns [begin, begin+count).
  static Variable SliceCols(const Variable& a, int begin, int count);
  /// Adds a 1 x cols row vector to every row of a (bias broadcast).
  static Variable AddRowBroadcast(const Variable& a, const Variable& row);

 private:
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  static Variable MakeOp(Matrix value,
                         std::vector<std::shared_ptr<Node>> parents,
                         std::function<void(Node&)> backward);

  std::shared_ptr<Node> node_;
};

/// Numerically estimates d(fn)/d(input) at `point` via central differences.
/// `fn` must be a pure function of the matrix. Used by gradient-check tests.
Matrix NumericalGradient(const std::function<double(const Matrix&)>& fn,
                         const Matrix& point, double epsilon = 1e-6);

}  // namespace after

#endif  // AFTER_TENSOR_AUTOGRAD_H_
