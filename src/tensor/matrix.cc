#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace after {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {
  AFTER_CHECK_GE(rows, 0);
  AFTER_CHECK_GE(cols, 0);
}

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  AFTER_CHECK_GE(rows, 0);
  AFTER_CHECK_GE(cols, 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    AFTER_CHECK_EQ(static_cast<int>(rows[r].size()), m.cols_);
    for (int c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::Randn(int rows, int cols, double stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.Normal(0.0, stddev);
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  m.data_ = values;
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix result = *this;
  result += other;
  return result;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix result = *this;
  result -= other;
  return result;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AFTER_CHECK_EQ(rows_, other.rows_);
  AFTER_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  AFTER_CHECK_EQ(rows_, other.rows_);
  AFTER_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix result = *this;
  result *= scalar;
  return result;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  AFTER_CHECK_EQ(rows_, other.rows_);
  AFTER_CHECK_EQ(cols_, other.cols_);
  Matrix result = *this;
  for (size_t i = 0; i < data_.size(); ++i) result.data_[i] *= other.data_[i];
  return result;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  AFTER_CHECK_EQ(cols_, other.rows_);
  Matrix result(rows_, other.cols_);
  const int m = rows_;
  const int k = cols_;
  const int n = other.cols_;
  // i-k-j loop order for row-major cache friendliness.
  for (int i = 0; i < m; ++i) {
    const double* a_row = &data_[static_cast<size_t>(i) * k];
    double* out_row = &result.data_[static_cast<size_t>(i) * n];
    for (int kk = 0; kk < k; ++kk) {
      const double a = a_row[kk];
      if (a == 0.0) continue;
      const double* b_row = &other.data_[static_cast<size_t>(kk) * n];
      for (int j = 0; j < n; ++j) out_row[j] += a * b_row[j];
    }
  }
  return result;
}

Matrix Matrix::Transposed() const {
  Matrix result(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) result.At(c, r) = At(r, c);
  return result;
}

Matrix Matrix::Map(const std::function<double(double)>& fn) const {
  Matrix result = *this;
  for (auto& x : result.data_) x = fn(x);
  return result;
}

double Matrix::Sum() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Matrix::Mean() const {
  if (data_.empty()) return 0.0;
  return Sum() / static_cast<double>(data_.size());
}

double Matrix::Norm() const {
  double total = 0.0;
  for (double x : data_) total += x * x;
  return std::sqrt(total);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  AFTER_CHECK_EQ(rows_, other.rows_);
  Matrix result(rows_, cols_ + other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) result.At(r, c) = At(r, c);
    for (int c = 0; c < other.cols_; ++c)
      result.At(r, cols_ + c) = other.At(r, c);
  }
  return result;
}

Matrix Matrix::SliceCols(int begin, int count) const {
  AFTER_CHECK_GE(begin, 0);
  AFTER_CHECK_GE(count, 0);
  AFTER_CHECK_LE(begin + count, cols_);
  Matrix result(rows_, count);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < count; ++c) result.At(r, c) = At(r, begin + c);
  return result;
}

Matrix Matrix::Row(int r) const {
  Matrix result(1, cols_);
  for (int c = 0; c < cols_; ++c) result.At(0, c) = At(r, c);
  return result;
}

Matrix Matrix::Col(int c) const {
  Matrix result(rows_, 1);
  for (int r = 0; r < rows_; ++r) result.At(r, 0) = At(r, c);
  return result;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

bool Matrix::AllClose(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data_[i]) > tolerance) return false;
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream oss;
  oss << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (int r = 0; r < rows_; ++r) {
    oss << (r == 0 ? "[" : ", [");
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) oss << ", ";
      oss << At(r, c);
    }
    oss << "]";
  }
  oss << "]";
  return oss.str();
}

}  // namespace after
