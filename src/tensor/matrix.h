#ifndef AFTER_TENSOR_MATRIX_H_
#define AFTER_TENSOR_MATRIX_H_

#include <functional>
#include <string>
#include <vector>

#include "common/check.h"

namespace after {

class Rng;

/// Dense row-major matrix of doubles. This is the numeric workhorse under
/// the autograd engine; all POSHGNN math (GCN propagation, the loss
/// quadratic form, Adam updates) is expressed in terms of it.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(int rows, int cols, double fill);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds a matrix from nested initializer-style data (used in tests).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Randn(int rows, int cols, double stddev, Rng& rng);

  /// Column vector (n x 1) from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  double& At(int r, int c) {
    AFTER_CHECK_GE(r, 0);
    AFTER_CHECK_LT(r, rows_);
    AFTER_CHECK_GE(c, 0);
    AFTER_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    AFTER_CHECK_GE(r, 0);
    AFTER_CHECK_LT(r, rows_);
    AFTER_CHECK_GE(c, 0);
    AFTER_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Unchecked flat accessors (hot loops).
  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Element-wise arithmetic. Shapes must match.
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  /// Scalar operations.
  Matrix operator*(double scalar) const;
  Matrix& operator*=(double scalar);

  /// Hadamard (element-wise) product.
  Matrix Hadamard(const Matrix& other) const;

  /// Matrix product: (m x k) * (k x n) -> (m x n).
  Matrix MatMul(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// Applies `fn` to every element, returning a new matrix.
  Matrix Map(const std::function<double(double)>& fn) const;

  /// Sum of all elements.
  double Sum() const;

  /// Mean of all elements (0 for an empty matrix).
  double Mean() const;

  /// Frobenius norm.
  double Norm() const;

  /// Maximum absolute element (0 for an empty matrix).
  double MaxAbs() const;

  /// Concatenates columns: [this | other]. Row counts must match.
  Matrix ConcatCols(const Matrix& other) const;

  /// Returns the sub-matrix of columns [begin, begin + count).
  Matrix SliceCols(int begin, int count) const;

  /// Returns row r as a 1 x cols matrix.
  Matrix Row(int r) const;

  /// Returns column c as a rows x 1 matrix.
  Matrix Col(int c) const;

  /// Sets every element to `value`.
  void Fill(double value);

  /// True if shapes and all elements match exactly.
  bool operator==(const Matrix& other) const;

  /// True if shapes match and all elements are within `tolerance`.
  bool AllClose(const Matrix& other, double tolerance = 1e-9) const;

  /// Compact debug representation.
  std::string ToString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Scalar * matrix convenience overload.
inline Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

}  // namespace after

#endif  // AFTER_TENSOR_MATRIX_H_
