#include "testing/fault_injection.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "sim/crowd_simulator.h"

namespace after {
namespace testing {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> ExistingDatasetFiles(const std::string& directory) {
  std::vector<std::string> files;
  const std::vector<std::string> fixed = {"meta.txt", "social.txt",
                                          "preference.txt", "presence.txt"};
  for (const auto& f : fixed)
    if (fs::exists(fs::path(directory) / f)) files.push_back(f);
  for (int s = 0;; ++s) {
    const std::string f = "session_" + std::to_string(s) + ".txt";
    if (!fs::exists(fs::path(directory) / f)) break;
    files.push_back(f);
  }
  return files;
}

/// Files whose bodies are numeric tables (headers + rows of doubles).
std::vector<std::string> NumericFiles(const std::vector<std::string>& files) {
  std::vector<std::string> numeric;
  for (const auto& f : files)
    if (f != "meta.txt" && f != "social.txt") numeric.push_back(f);
  return numeric;
}

bool ReadLines(const fs::path& path, std::vector<std::string>* lines) {
  std::ifstream in(path);
  if (!in) return false;
  lines->clear();
  std::string line;
  while (std::getline(in, line)) lines->push_back(line);
  return true;
}

bool WriteLines(const fs::path& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& line : lines) out << line << "\n";
  return static_cast<bool>(out);
}

/// Picks a non-header line index with at least one token; -1 if none.
int PickDataLine(const std::vector<std::string>& lines, Rng& rng) {
  if (lines.size() < 2) return -1;
  return 1 + rng.UniformInt(static_cast<int>(lines.size()) - 1);
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += " ";
    out += tokens[i];
  }
  return out;
}

std::vector<std::vector<Vec2>> CopyTrajectory(const XrWorld& world) {
  return world.trajectory();
}

std::vector<Interface> CopyInterfaces(const XrWorld& world) {
  return world.interfaces();
}

}  // namespace

const char* DatasetFileFaultName(DatasetFileFault fault) {
  switch (fault) {
    case DatasetFileFault::kTruncateFile:
      return "truncate-file";
    case DatasetFileFault::kNanValue:
      return "nan-value";
    case DatasetFileFault::kOutOfRangeUserId:
      return "out-of-range-user-id";
    case DatasetFileFault::kInconsistentRowLength:
      return "inconsistent-row-length";
    case DatasetFileFault::kMissingFile:
      return "missing-file";
    case DatasetFileFault::kGarbageHeader:
      return "garbage-header";
  }
  return "unknown";
}

Status InjectDatasetFileFault(const std::string& directory,
                              DatasetFileFault fault, Rng& rng,
                              std::string* corrupted_file) {
  const std::vector<std::string> files = ExistingDatasetFiles(directory);
  if (files.empty())
    return NotFoundError(directory + ": no dataset files to corrupt");
  const std::vector<std::string> numeric = NumericFiles(files);

  std::string victim;
  switch (fault) {
    case DatasetFileFault::kTruncateFile: {
      victim = files[rng.UniformInt(static_cast<int>(files.size()))];
      const fs::path path = fs::path(directory) / victim;
      std::vector<std::string> lines;
      if (!ReadLines(path, &lines))
        return NotFoundError(victim + ": cannot read");
      // Keep the header plus at most half of the body, then cut the last
      // surviving line in half so the final token is mangled too.
      lines.resize(1 + (lines.size() - 1) / 2);
      if (!lines.empty() && lines.back().size() > 2)
        lines.back().resize(lines.back().size() / 2);
      if (!WriteLines(path, lines))
        return InvalidDataError(victim + ": cannot rewrite");
      break;
    }
    case DatasetFileFault::kNanValue: {
      if (numeric.empty())
        return NotFoundError(directory + ": no numeric files");
      victim = numeric[rng.UniformInt(static_cast<int>(numeric.size()))];
      const fs::path path = fs::path(directory) / victim;
      std::vector<std::string> lines;
      if (!ReadLines(path, &lines))
        return NotFoundError(victim + ": cannot read");
      const int line_index = PickDataLine(lines, rng);
      if (line_index < 0)
        return InvalidDataError(victim + ": no data lines");
      std::vector<std::string> tokens = SplitTokens(lines[line_index]);
      if (tokens.empty())
        return InvalidDataError(victim + ": empty data line");
      tokens[rng.UniformInt(static_cast<int>(tokens.size()))] = "nan";
      lines[line_index] = JoinTokens(tokens);
      if (!WriteLines(path, lines))
        return InvalidDataError(victim + ": cannot rewrite");
      break;
    }
    case DatasetFileFault::kOutOfRangeUserId: {
      victim = "social.txt";
      const fs::path path = fs::path(directory) / victim;
      std::vector<std::string> lines;
      if (!ReadLines(path, &lines))
        return NotFoundError(victim + ": cannot read");
      const int line_index = PickDataLine(lines, rng);
      if (line_index < 0)
        return InvalidDataError(victim + ": no edges to corrupt");
      std::vector<std::string> tokens = SplitTokens(lines[line_index]);
      if (tokens.size() < 2)
        return InvalidDataError(victim + ": malformed edge line");
      tokens[rng.UniformInt(2)] = "999999999";
      lines[line_index] = JoinTokens(tokens);
      if (!WriteLines(path, lines))
        return InvalidDataError(victim + ": cannot rewrite");
      break;
    }
    case DatasetFileFault::kInconsistentRowLength: {
      if (numeric.empty())
        return NotFoundError(directory + ": no numeric files");
      victim = numeric[rng.UniformInt(static_cast<int>(numeric.size()))];
      const fs::path path = fs::path(directory) / victim;
      std::vector<std::string> lines;
      if (!ReadLines(path, &lines))
        return NotFoundError(victim + ": cannot read");
      const int line_index = PickDataLine(lines, rng);
      if (line_index < 0)
        return InvalidDataError(victim + ": no data lines");
      lines[line_index] += " 0.5";
      if (!WriteLines(path, lines))
        return InvalidDataError(victim + ": cannot rewrite");
      break;
    }
    case DatasetFileFault::kMissingFile: {
      victim = files[rng.UniformInt(static_cast<int>(files.size()))];
      std::error_code ec;
      fs::remove(fs::path(directory) / victim, ec);
      if (ec) return InvalidDataError(victim + ": cannot remove");
      break;
    }
    case DatasetFileFault::kGarbageHeader: {
      if (numeric.empty())
        return NotFoundError(directory + ": no numeric files");
      victim = numeric[rng.UniformInt(static_cast<int>(numeric.size()))];
      const fs::path path = fs::path(directory) / victim;
      std::vector<std::string> lines;
      if (!ReadLines(path, &lines))
        return NotFoundError(victim + ": cannot read");
      if (lines.empty()) lines.push_back("");
      lines[0] = "!!corrupt header!!";
      if (!WriteLines(path, lines))
        return InvalidDataError(victim + ": cannot rewrite");
      break;
    }
  }
  if (corrupted_file != nullptr) *corrupted_file = victim;
  return OkStatus();
}

Status TruncateFileTail(const std::string& path, int64_t keep_bytes) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return NotFoundError("no such file: " + path);
  if (keep_bytes < 0 || static_cast<uint64_t>(keep_bytes) > size)
    return InvalidArgumentError("keep_bytes out of range for " + path);
  fs::resize_file(path, static_cast<uint64_t>(keep_bytes), ec);
  if (ec)
    return InternalError("truncate " + path + ": " + ec.message());
  return OkStatus();
}

Status FlipRandomByte(const std::string& path, Rng& rng, int64_t* offset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("no such file: " + path);
  std::ostringstream slurped;
  slurped << in.rdbuf();
  std::string bytes = slurped.str();
  in.close();
  if (bytes.empty())
    return InvalidArgumentError("cannot flip a byte of empty file " + path);
  const int64_t victim = rng.UniformInt(static_cast<int>(bytes.size()));
  const int bit = rng.UniformInt(8);
  bytes[victim] = static_cast<char>(static_cast<uint8_t>(bytes[victim]) ^
                                    (1u << bit));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot rewrite " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return InternalError("short rewrite of " + path);
  if (offset != nullptr) *offset = victim;
  return OkStatus();
}

XrWorld WithNanPositions(const XrWorld& world, int num_poisoned_steps,
                         Rng& rng) {
  std::vector<std::vector<Vec2>> trajectory = CopyTrajectory(world);
  const int steps = world.num_steps();
  const int n = world.num_users();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < num_poisoned_steps && steps > 0 && n > 0; ++i) {
    const int t = rng.UniformInt(steps);
    const int u = rng.UniformInt(n);
    trajectory[t][u] = Vec2(nan, nan);
  }
  return XrWorld::FromRecorded(CopyInterfaces(world), std::move(trajectory),
                               world.body_radius());
}

XrWorld WithUserDroppedMidSession(const XrWorld& world, int user,
                                  int drop_step) {
  AFTER_CHECK_GE(user, 0);
  AFTER_CHECK_LT(user, world.num_users());
  std::vector<std::vector<Vec2>> trajectory = CopyTrajectory(world);
  // Parked far outside any plausible room: never visible, never
  // co-located, never recommended by a distance-aware method.
  const Vec2 parking(1e6, 1e6);
  for (int t = std::max(0, drop_step); t < world.num_steps(); ++t)
    trajectory[t][user] = parking;
  return XrWorld::FromRecorded(CopyInterfaces(world), std::move(trajectory),
                               world.body_radius());
}

XrWorld WithTeleportingUser(const XrWorld& world, int user, int period,
                            double room_side, Rng& rng) {
  AFTER_CHECK_GE(user, 0);
  AFTER_CHECK_LT(user, world.num_users());
  AFTER_CHECK_GT(period, 0);
  std::vector<std::vector<Vec2>> trajectory = CopyTrajectory(world);
  Vec2 current = trajectory.empty() ? Vec2(0, 0) : trajectory[0][user];
  for (int t = 0; t < world.num_steps(); ++t) {
    if (t % period == 0)
      current = Vec2(rng.Uniform(0.0, room_side), rng.Uniform(0.0, room_side));
    trajectory[t][user] = current;
  }
  return XrWorld::FromRecorded(CopyInterfaces(world), std::move(trajectory),
                               world.body_radius());
}

XrWorld GenerateWorldWithChurn(const XrWorld::Config& config,
                               double drop_probability,
                               double rejoin_probability, Rng& rng) {
  AFTER_CHECK_GE(config.num_users, 1);
  AFTER_CHECK_GE(config.num_steps, 1);

  std::vector<Interface> interfaces(config.num_users);
  const int num_vr = static_cast<int>(config.vr_fraction *
                                      static_cast<double>(config.num_users));
  for (int u = 0; u < config.num_users; ++u)
    interfaces[u] = u < num_vr ? Interface::kVR : Interface::kMR;
  rng.Shuffle(interfaces);

  CrowdSimulator sim(config.time_step);
  CrowdSimulator::AgentParams params;
  params.radius = config.body_radius;
  params.max_speed = config.max_speed;

  auto random_point = [&]() {
    return Vec2(rng.Uniform(0.0, config.room_side),
                rng.Uniform(0.0, config.room_side));
  };

  for (int u = 0; u < config.num_users; ++u) {
    sim.AddAgent(random_point(), params);
    sim.SetGoal(u, random_point());
  }

  std::vector<std::vector<Vec2>> trajectory;
  trajectory.reserve(config.num_steps);
  for (int t = 0; t < config.num_steps; ++t) {
    std::vector<Vec2> positions(config.num_users);
    for (int u = 0; u < config.num_users; ++u) positions[u] = sim.Position(u);
    trajectory.push_back(std::move(positions));
    if (t + 1 == config.num_steps) break;

    for (int u = 0; u < config.num_users; ++u) {
      if (sim.AgentActive(u)) {
        if (rng.Bernoulli(drop_probability)) {
          sim.SetAgentActive(u, false);
          continue;
        }
        if (sim.ReachedGoal(u, 0.3) || rng.Bernoulli(0.02))
          sim.SetGoal(u, random_point());
      } else if (rng.Bernoulli(rejoin_probability)) {
        // Rejoining users respawn somewhere fresh (lobby -> room).
        sim.TeleportAgent(u, random_point());
        sim.SetAgentActive(u, true);
        sim.SetGoal(u, random_point());
      }
    }
    sim.Step();
  }
  return XrWorld::FromRecorded(std::move(interfaces), std::move(trajectory),
                               config.body_radius);
}

void PoisonUtilities(Dataset* dataset, int num_entries, Rng& rng) {
  const int n = dataset->num_users();
  if (n < 2) return;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < num_entries; ++i) {
    const int r = rng.UniformInt(n);
    int c = rng.UniformInt(n);
    if (c == r) c = (c + 1) % n;
    if (rng.Bernoulli(0.5))
      dataset->preference.At(r, c) = nan;
    else
      dataset->social_presence.At(r, c) = nan;
  }
}

void AppendPoisonedTrainingSession(Dataset* dataset, Rng& rng) {
  AFTER_CHECK(!dataset->sessions.empty());
  const XrWorld& base = dataset->sessions.front();
  dataset->sessions.insert(dataset->sessions.end() - 1,
                           WithNanPositions(base, base.num_steps(), rng));
}

FaultyRecommender::FaultyRecommender(Recommender* delegate, int healthy_steps)
    : delegate_(delegate), healthy_steps_(healthy_steps) {
  AFTER_CHECK(delegate_ != nullptr);
}

std::string FaultyRecommender::name() const {
  return "Faulty(" + delegate_->name() + ")";
}

void FaultyRecommender::BeginSession(int num_users, int target) {
  delegate_->BeginSession(num_users, target);
}

std::vector<bool> FaultyRecommender::Recommend(const StepContext& context) {
  ++calls_;
  if (calls_ > healthy_steps_) {
    ++failures_emitted_;
    return {};  // Wrong-size output: the model "crashed".
  }
  return delegate_->Recommend(context);
}

}  // namespace testing
}  // namespace after
