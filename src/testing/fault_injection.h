#ifndef AFTER_TESTING_FAULT_INJECTION_H_
#define AFTER_TESTING_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "sim/xr_world.h"

namespace after {
namespace testing {

/// Deterministic chaos toolkit for the robustness layer: every injector
/// is seeded through common/rng so a failing chaos run can be replayed
/// bit-exactly. Three families of faults mirror how AFTER deployments
/// actually break: corrupt persisted datasets (storage), degenerate
/// trajectories and user churn (sessions), and poisoned utilities /
/// misbehaving models (numerics).

// ---- On-disk dataset corruption -------------------------------------

enum class DatasetFileFault {
  /// Cuts a file roughly in half.
  kTruncateFile,
  /// Replaces one numeric token with "nan".
  kNanValue,
  /// Rewrites a social.txt edge endpoint to an out-of-range user id.
  kOutOfRangeUserId,
  /// Appends an extra value to one matrix row.
  kInconsistentRowLength,
  /// Deletes a required file.
  kMissingFile,
  /// Replaces a file's header line with garbage.
  kGarbageHeader,
};

inline constexpr DatasetFileFault kAllDatasetFileFaults[] = {
    DatasetFileFault::kTruncateFile,
    DatasetFileFault::kNanValue,
    DatasetFileFault::kOutOfRangeUserId,
    DatasetFileFault::kInconsistentRowLength,
    DatasetFileFault::kMissingFile,
    DatasetFileFault::kGarbageHeader,
};

const char* DatasetFileFaultName(DatasetFileFault fault);

/// Corrupts one file of a saved dataset directory according to `fault`,
/// choosing the victim file/line deterministically from `rng`. Returns
/// the path of the corrupted file via `corrupted_file` (when non-null).
Status InjectDatasetFileFault(const std::string& directory,
                              DatasetFileFault fault, Rng& rng,
                              std::string* corrupted_file = nullptr);

// ---- Generic durable-file corruption --------------------------------

/// Truncates `path` to its first `keep_bytes` bytes (the crash-mid-write
/// torn tail used by the durability tests, serve/journal.h).
/// kInvalidArgument when keep_bytes exceeds the file's size.
Status TruncateFileTail(const std::string& path, int64_t keep_bytes);

/// Flips one random bit of one random byte of `path` (silent media
/// corruption). The chosen byte offset is reported via `offset` when
/// non-null. kInvalidArgument on an empty file.
Status FlipRandomByte(const std::string& path, Rng& rng,
                      int64_t* offset = nullptr);

// ---- Session / trajectory faults ------------------------------------

/// Copies `world` with `num_poisoned_steps` randomly chosen steps given a
/// NaN position for one random user each (corrupted tracking samples).
XrWorld WithNanPositions(const XrWorld& world, int num_poisoned_steps,
                         Rng& rng);

/// Copies `world` with `user` leaving at `drop_step`: from that step on
/// the user is parked far outside the scene (never visible, never
/// co-located), matching a mid-session disconnect.
XrWorld WithUserDroppedMidSession(const XrWorld& world, int user,
                                  int drop_step);

/// Copies `world` with `user` teleporting to a uniform random in-room
/// position every `period` steps (tracking glitches / respawns).
XrWorld WithTeleportingUser(const XrWorld& world, int user, int period,
                            double room_side, Rng& rng);

/// Simulates a session with user churn through the crowd simulator's
/// agent-activation API: each step every active user drops with
/// probability `drop_probability` (frozen in place, removed from ORCA
/// avoidance) and each inactive user rejoins with `rejoin_probability`
/// at a random teleport position. The result is a structurally valid
/// XrWorld whose population mutates under the recommender.
XrWorld GenerateWorldWithChurn(const XrWorld::Config& config,
                               double drop_probability,
                               double rejoin_probability, Rng& rng);

// ---- Utility / model faults -----------------------------------------

/// Overwrites `num_entries` off-diagonal entries of both utility
/// matrices with NaN (poisoned preference store).
void PoisonUtilities(Dataset* dataset, int num_entries, Rng& rng);

/// Adds a third session to `dataset` whose trajectory is NaN-poisoned;
/// training on it produces non-finite losses, exercising the training
/// guard while the original sessions stay clean.
void AppendPoisonedTrainingSession(Dataset* dataset, Rng& rng);

/// Wraps a delegate recommender and simulates a model crash: after
/// `healthy_steps` calls, Recommend returns an empty (wrong-size) vector
/// forever. The evaluator must degrade to its fallback.
class FaultyRecommender : public Recommender {
 public:
  FaultyRecommender(Recommender* delegate, int healthy_steps);

  std::string name() const override;
  void BeginSession(int num_users, int target) override;
  std::vector<bool> Recommend(const StepContext& context) override;

  int failures_emitted() const { return failures_emitted_; }

 private:
  Recommender* delegate_;
  int healthy_steps_;
  int calls_ = 0;
  int failures_emitted_ = 0;
};

}  // namespace testing
}  // namespace after

#endif  // AFTER_TESTING_FAULT_INJECTION_H_
