#include "userstudy/user_study.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/comurnet.h"
#include "baselines/grafrank.h"
#include "baselines/mvagc.h"
#include "baselines/original_recommender.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/stats.h"

namespace after {
namespace {

/// Maps a participant's experienced utility to a 1-5 Likert response:
/// min-max scaling across the methods this participant tried, plus an
/// individual leniency bias and response noise, rounded to the scale.
double LikertResponse(double value, double lo, double hi, double bias,
                      double noise) {
  double scaled = 3.0;
  if (hi - lo > 1e-12) scaled = 1.0 + 4.0 * (value - lo) / (hi - lo);
  const double response = std::round(scaled + bias + noise);
  return std::clamp(response, 1.0, 5.0);
}

}  // namespace

UserStudyResult RunUserStudy(const UserStudyConfig& config) {
  Rng rng(config.seed);

  // The conferencing room the participants share.
  DatasetConfig data_config = HubsDefaultConfig();
  data_config.num_users = config.num_participants;
  data_config.vr_fraction = config.vr_fraction;
  data_config.num_steps = config.num_steps;
  data_config.room_side = config.room_side;
  data_config.num_sessions = 2;  // train on the first, run on the second
  data_config.seed = config.seed;
  const Dataset dataset = GenerateHubsLike(data_config);

  // Participant response model.
  std::vector<double> beta(config.num_participants);
  std::vector<double> leniency(config.num_participants);
  for (int i = 0; i < config.num_participants; ++i) {
    beta[i] = rng.Uniform(config.beta_lo, config.beta_hi);
    leniency[i] = rng.Normal(0.0, config.leniency_stddev);
  }

  TrainOptions train;
  train.epochs = config.train_epochs;
  train.targets_per_epoch = config.train_targets_per_epoch;
  train.seed = config.seed + 1;

  // The five conditions of the study.
  PoshgnnConfig poshgnn_config;
  poshgnn_config.seed = config.seed + 2;
  poshgnn_config.max_recommendations = config.display_budget;
  auto poshgnn = std::make_unique<Poshgnn>(poshgnn_config);
  poshgnn->Train(dataset, train);

  GraFrank::Options grafrank_options;
  grafrank_options.seed = config.seed + 3;
  grafrank_options.k = config.display_budget;
  auto grafrank = std::make_unique<GraFrank>(grafrank_options);
  grafrank->Train(dataset, train);

  MvAgc::Options mvagc_options;
  mvagc_options.num_groups =
      std::max(2, config.num_participants / 8);
  mvagc_options.max_recommendations = config.display_budget;
  mvagc_options.seed = config.seed + 4;
  auto mvagc = std::make_unique<MvAgc>(mvagc_options);
  mvagc->Train(dataset, train);

  Comurnet::Options comurnet_options;
  comurnet_options.iterations = config.comurnet_iterations;
  comurnet_options.delay_steps = config.comurnet_delay_steps;
  comurnet_options.max_recommendations = config.display_budget;
  comurnet_options.seed = config.seed + 5;
  auto comurnet = std::make_unique<Comurnet>(comurnet_options);

  auto original = std::make_unique<OriginalRecommender>();

  std::vector<Recommender*> methods = {poshgnn.get(), grafrank.get(),
                                       mvagc.get(), comurnet.get(),
                                       original.get()};

  UserStudyResult study;
  const double steps = static_cast<double>(config.num_steps);

  for (Recommender* method : methods) {
    MethodFeedback feedback;
    feedback.method = method->name();
    for (int participant = 0; participant < config.num_participants;
         ++participant) {
      EvalOptions eval;
      eval.session = 1;
      eval.targets = {participant};
      eval.beta = beta[participant];
      const EvalResult result =
          EvaluateRecommender(*method, dataset, eval);
      // Effective utility per rendered user: satisfaction tracks how well
      // the viewport's attention budget is spent, so a render-all
      // condition cannot win by sheer volume of visible strangers.
      const double per_render =
          std::max(1.0, result.avg_recommended_per_step);
      feedback.per_participant_after.push_back(result.after_utility / steps /
                                               per_render);
      feedback.per_participant_preference.push_back(
          result.preference_utility / steps / per_render);
      feedback.per_participant_presence.push_back(
          result.social_presence_utility / steps / per_render);
    }
    study.methods.push_back(std::move(feedback));
  }

  // Likert responses: each participant compares the methods they tried.
  const int num_methods = static_cast<int>(study.methods.size());
  for (int participant = 0; participant < config.num_participants;
       ++participant) {
    auto range_over_methods = [&](auto getter) {
      double lo = 1e300, hi = -1e300;
      for (const auto& m : study.methods) {
        const double v = getter(m);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return std::pair<double, double>(lo, hi);
    };
    const auto [after_lo, after_hi] = range_over_methods(
        [&](const MethodFeedback& m) {
          return m.per_participant_after[participant];
        });
    const auto [pref_lo, pref_hi] = range_over_methods(
        [&](const MethodFeedback& m) {
          return m.per_participant_preference[participant];
        });
    const auto [pres_lo, pres_hi] = range_over_methods(
        [&](const MethodFeedback& m) {
          return m.per_participant_presence[participant];
        });

    for (int mi = 0; mi < num_methods; ++mi) {
      MethodFeedback& m = study.methods[mi];
      m.per_participant_satisfaction.push_back(LikertResponse(
          m.per_participant_after[participant], after_lo, after_hi,
          leniency[participant],
          rng.Normal(0.0, config.response_noise_stddev)));
      m.per_participant_customization.push_back(LikertResponse(
          m.per_participant_preference[participant], pref_lo, pref_hi,
          leniency[participant],
          rng.Normal(0.0, config.response_noise_stddev)));
      m.per_participant_togetherness.push_back(LikertResponse(
          m.per_participant_presence[participant], pres_lo, pres_hi,
          leniency[participant],
          rng.Normal(0.0, config.response_noise_stddev)));
    }
  }

  for (auto& m : study.methods) {
    m.avg_after_per_step = Mean(m.per_participant_after);
    m.avg_preference_per_step = Mean(m.per_participant_preference);
    m.avg_presence_per_step = Mean(m.per_participant_presence);
    m.satisfaction_likert = Mean(m.per_participant_satisfaction);
    m.customization_likert = Mean(m.per_participant_customization);
    m.togetherness_likert = Mean(m.per_participant_togetherness);
  }

  // Table VIII: correlations across all (method, participant) pairs.
  std::vector<double> all_after, all_satisfaction;
  std::vector<double> all_pref, all_customization;
  std::vector<double> all_pres, all_togetherness;
  for (const auto& m : study.methods) {
    all_after.insert(all_after.end(), m.per_participant_after.begin(),
                     m.per_participant_after.end());
    all_satisfaction.insert(all_satisfaction.end(),
                            m.per_participant_satisfaction.begin(),
                            m.per_participant_satisfaction.end());
    all_pref.insert(all_pref.end(), m.per_participant_preference.begin(),
                    m.per_participant_preference.end());
    all_customization.insert(all_customization.end(),
                             m.per_participant_customization.begin(),
                             m.per_participant_customization.end());
    all_pres.insert(all_pres.end(), m.per_participant_presence.begin(),
                    m.per_participant_presence.end());
    all_togetherness.insert(all_togetherness.end(),
                            m.per_participant_togetherness.begin(),
                            m.per_participant_togetherness.end());
  }
  study.pearson_after = PearsonCorrelation(all_after, all_satisfaction);
  study.spearman_after = SpearmanCorrelation(all_after, all_satisfaction);
  study.pearson_preference = PearsonCorrelation(all_pref, all_customization);
  study.spearman_preference =
      SpearmanCorrelation(all_pref, all_customization);
  study.pearson_presence = PearsonCorrelation(all_pres, all_togetherness);
  study.spearman_presence =
      SpearmanCorrelation(all_pres, all_togetherness);

  // Significance of POSHGNN vs. every other condition.
  AFTER_CHECK(!study.methods.empty());
  const MethodFeedback& ours = study.methods.front();
  for (size_t i = 1; i < study.methods.size(); ++i) {
    const TTestResult t = PairedTTest(
        ours.per_participant_satisfaction,
        study.methods[i].per_participant_satisfaction);
    study.max_p_value_vs_poshgnn =
        std::max(study.max_p_value_vs_poshgnn, t.p_value);
  }
  return study;
}

}  // namespace after
