#ifndef AFTER_USERSTUDY_USER_STUDY_H_
#define AFTER_USERSTUDY_USER_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recommender.h"

namespace after {

/// Simulated 48-participant user study (Sec. V-C). The paper's physical
/// study gathers Likert feedback from people using iPhone (MR) and Quest
/// 2 (VR) headsets; here participants are simulated: each participant's
/// satisfaction responses are a noisy monotone readout of the utilities
/// they actually experienced under each method, plus an individual
/// leniency bias (documented substitution; see DESIGN.md). This preserves
/// what Table VIII measures — the correlation structure between the
/// proposed utilities and reported satisfaction.
struct UserStudyConfig {
  int num_participants = 48;
  double room_side = 8.0;
  int num_steps = 61;
  double vr_fraction = 0.5;
  /// Participant-specific beta values are drawn uniformly from this range
  /// (the paper collects preferred beta via questionnaire).
  double beta_lo = 0.3;
  double beta_hi = 0.7;
  /// Response-model noise.
  double leniency_stddev = 0.3;
  double response_noise_stddev = 0.25;
  uint64_t seed = 2024;
  int comurnet_iterations = 60;
  /// COMURNet staleness in the study room: a few steps (the paper's Hub
  /// solve takes ~0.4 s per 0.5 s step on a server; the study ran on
  /// iPhone / Quest 2 hardware, slower still), far below the 44-step
  /// delay of the N=200 rooms.
  int comurnet_delay_steps = 5;
  /// Display budget for the budgeted conditions.
  int display_budget = 8;
  /// POSHGNN / learned-baseline training budget.
  int train_epochs = 10;
  int train_targets_per_epoch = 4;
};

/// Per-method outcome: average *effective* utilities per time step and
/// rendered user (how well the display budget is spent — a render-all
/// condition cannot win by flooding the viewport), plus average Likert
/// feedback (1-5).
struct MethodFeedback {
  std::string method;
  double avg_after_per_step = 0.0;
  double avg_preference_per_step = 0.0;
  double avg_presence_per_step = 0.0;
  double satisfaction_likert = 0.0;
  double customization_likert = 0.0;
  double togetherness_likert = 0.0;
  std::vector<double> per_participant_after;
  std::vector<double> per_participant_satisfaction;
  std::vector<double> per_participant_preference;
  std::vector<double> per_participant_customization;
  std::vector<double> per_participant_presence;
  std::vector<double> per_participant_togetherness;
};

/// Full study output: Fig. 4 data plus Table VIII correlations and the
/// strongest p-value of POSHGNN against any baseline.
struct UserStudyResult {
  std::vector<MethodFeedback> methods;
  double pearson_preference = 0.0;
  double spearman_preference = 0.0;
  double pearson_presence = 0.0;
  double spearman_presence = 0.0;
  double pearson_after = 0.0;
  double spearman_after = 0.0;
  /// Max over baselines of the paired t-test p-value of POSHGNN's
  /// satisfaction vs. that baseline's (paper: <= 0.004).
  double max_p_value_vs_poshgnn = 0.0;
};

/// Runs the study end to end: builds the room, trains the learned
/// methods, evaluates all five conditions with every participant as the
/// target, and generates Likert responses.
UserStudyResult RunUserStudy(const UserStudyConfig& config);

}  // namespace after

#endif  // AFTER_USERSTUDY_USER_STUDY_H_
