#include <gtest/gtest.h>

#include "baselines/comurnet.h"
#include "baselines/grafrank.h"
#include "baselines/mvagc.h"
#include "baselines/nearest_recommender.h"
#include "baselines/original_recommender.h"
#include "baselines/random_recommender.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "data/dataset.h"
#include "eval/stats.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

DatasetConfig SmallConfig() {
  DatasetConfig config;
  config.num_users = 30;
  config.num_steps = 15;
  config.num_sessions = 2;
  config.room_side = 7.0;
  config.seed = 17;
  return config;
}

StepContext MakeContext(const Dataset& dataset, const OcclusionGraph& occ,
                        int target, int t) {
  StepContext context;
  context.t = t;
  context.target = target;
  context.positions = &dataset.sessions[0].PositionsAt(t);
  context.occlusion = &occ;
  context.interfaces = &dataset.sessions[0].interfaces();
  context.preference = &dataset.preference;
  context.social_presence = &dataset.social_presence;
  context.body_radius = dataset.body_radius();
  return context;
}

int CountSelected(const std::vector<bool>& selection) {
  int count = 0;
  for (bool b : selection) count += b ? 1 : 0;
  return count;
}

TEST(RandomRecommenderTest, ExactlyKAndFixedPerSession) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  RandomRecommender rec(5, 9);
  rec.BeginSession(30, 3);
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 3, dataset.body_radius());
  const auto first = rec.Recommend(MakeContext(dataset, occ, 3, 0));
  EXPECT_EQ(CountSelected(first), 5);
  EXPECT_FALSE(first[3]);
  // Fixed within a session.
  const auto second = rec.Recommend(MakeContext(dataset, occ, 3, 1));
  EXPECT_EQ(first, second);
  // Re-sampled across sessions.
  rec.BeginSession(30, 3);
  const auto third = rec.Recommend(MakeContext(dataset, occ, 3, 0));
  EXPECT_EQ(CountSelected(third), 5);
}

TEST(NearestRecommenderTest, PicksClosestUsers) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  NearestRecommender rec(4);
  const int target = 2;
  const auto& positions = dataset.sessions[0].PositionsAt(0);
  const OcclusionGraph occ =
      BuildOcclusionGraph(positions, target, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, target, 0));
  EXPECT_EQ(CountSelected(selection), 4);
  EXPECT_FALSE(selection[target]);

  // Every selected user must be at least as close as every unselected.
  double max_selected = 0.0;
  double min_unselected = 1e18;
  for (int w = 0; w < 30; ++w) {
    if (w == target) continue;
    const double d = Distance(positions[target], positions[w]);
    if (selection[w]) {
      max_selected = std::max(max_selected, d);
    } else {
      min_unselected = std::min(min_unselected, d);
    }
  }
  EXPECT_LE(max_selected, min_unselected + 1e-12);
}

TEST(MvAgcTest, PartitionsUsersIntoGroups) {
  const Dataset dataset = GenerateSmmLike(SmallConfig());
  MvAgc::Options options;
  options.num_groups = 5;
  MvAgc rec(options);
  rec.Train(dataset, TrainOptions());
  const auto& assignment = rec.assignments();
  ASSERT_EQ(assignment.size(), 30u);
  for (int a : assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
}

TEST(MvAgcTest, RecommendsOwnGroupOnly) {
  const Dataset dataset = GenerateSmmLike(SmallConfig());
  MvAgc::Options options;
  options.num_groups = 4;
  options.max_recommendations = 0;  // whole group
  MvAgc rec(options);
  rec.Train(dataset, TrainOptions());
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 1, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, 1, 0));
  const int group = rec.assignments()[1];
  for (int w = 0; w < 30; ++w) {
    if (w == 1) {
      EXPECT_FALSE(selection[w]);
    } else {
      EXPECT_EQ(selection[w], rec.assignments()[w] == group);
    }
  }
}

TEST(MvAgcTest, BudgetCapsGroupSize) {
  const Dataset dataset = GenerateSmmLike(SmallConfig());
  MvAgc::Options options;
  options.num_groups = 2;  // big groups
  options.max_recommendations = 3;
  MvAgc rec(options);
  rec.Train(dataset, TrainOptions());
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 0, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, 0, 0));
  EXPECT_LE(CountSelected(selection), 3);
}

TEST(GraFrankTest, LearnsAffinityRanking) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  GraFrank::Options options;
  options.k = 5;
  options.epochs = 40;
  GraFrank rec(options);
  rec.Train(dataset, TrainOptions());

  // Scores must correlate with the affinity the ranker was trained on.
  std::vector<double> scores, affinity;
  for (int w = 0; w < 30; ++w) {
    if (w == 4) continue;
    scores.push_back(rec.Score(dataset, 4, w));
    affinity.push_back(0.5 * dataset.preference.At(4, w) +
                       0.5 * dataset.social_presence.At(4, w));
  }
  EXPECT_GT(SpearmanCorrelation(scores, affinity), 0.5);
}

TEST(GraFrankTest, StaticAcrossTime) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  GraFrank::Options options;
  options.k = 5;
  GraFrank rec(options);
  rec.Train(dataset, TrainOptions());
  const OcclusionGraph occ0 = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 2, dataset.body_radius());
  const OcclusionGraph occ5 = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(5), 2, dataset.body_radius());
  const auto a = rec.Recommend(MakeContext(dataset, occ0, 2, 0));
  auto context5 = MakeContext(dataset, occ5, 2, 5);
  context5.positions = &dataset.sessions[0].PositionsAt(5);
  const auto b = rec.Recommend(context5);
  EXPECT_EQ(a, b);  // ignores trajectories entirely
  EXPECT_EQ(CountSelected(a), 5);
}

TEST(ComurnetTest, FreshSolveIsIndependentSet) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  Comurnet::Options options;
  options.iterations = 100;
  options.delay_steps = 0;  // idealized: no staleness
  options.max_recommendations = 0;
  Comurnet rec(options);
  rec.BeginSession(30, 0);
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 0, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, 0, 0));
  EXPECT_EQ(occ.CountConflicts(selection), 0);
  EXPECT_FALSE(selection[0]);
  EXPECT_GT(CountSelected(selection), 0);
}

TEST(ComurnetTest, StalenessDelaysOutput) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  Comurnet::Options options;
  options.iterations = 50;
  options.delay_steps = 3;
  Comurnet rec(options);
  rec.BeginSession(30, 0);
  for (int t = 0; t < 3; ++t) {
    const OcclusionGraph occ = BuildOcclusionGraph(
        dataset.sessions[0].PositionsAt(t), 0, dataset.body_radius());
    const auto selection = rec.Recommend(MakeContext(dataset, occ, 0, t));
    EXPECT_EQ(CountSelected(selection), 0) << "t=" << t;
  }
  const OcclusionGraph occ3 = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(3), 0, dataset.body_radius());
  const auto late = rec.Recommend(MakeContext(dataset, occ3, 0, 3));
  EXPECT_GT(CountSelected(late), 0);
  // The late set is the t=0 solve: independent in the t=0 graph.
  const OcclusionGraph occ0 = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 0, dataset.body_radius());
  EXPECT_EQ(occ0.CountConflicts(late), 0);
}

TEST(ComurnetTest, BudgetRespected) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  Comurnet::Options options;
  options.iterations = 100;
  options.delay_steps = 0;
  options.max_recommendations = 4;
  Comurnet rec(options);
  rec.BeginSession(30, 0);
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 0, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, 0, 0));
  EXPECT_LE(CountSelected(selection), 4);
  EXPECT_EQ(occ.CountConflicts(selection), 0);  // subset stays independent
}

TEST(OriginalRecommenderTest, RendersEveryoneButTarget) {
  const Dataset dataset = GenerateTimikLike(SmallConfig());
  OriginalRecommender rec;
  const OcclusionGraph occ = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 7, dataset.body_radius());
  const auto selection = rec.Recommend(MakeContext(dataset, occ, 7, 0));
  EXPECT_EQ(CountSelected(selection), 29);
  EXPECT_FALSE(selection[7]);
}

}  // namespace
}  // namespace after
