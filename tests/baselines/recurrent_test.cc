#include <gtest/gtest.h>

#include "baselines/dcrnn_recommender.h"
#include "baselines/tgcn_recommender.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

DatasetConfig TinyConfig() {
  DatasetConfig config;
  config.num_users = 18;
  config.num_steps = 10;
  config.num_sessions = 2;
  config.room_side = 6.0;
  config.seed = 23;
  return config;
}

StepContext MakeContext(const Dataset& dataset, const OcclusionGraph& occ,
                        int target, int t, int session = 0) {
  StepContext context;
  context.t = t;
  context.target = target;
  context.positions = &dataset.sessions[session].PositionsAt(t);
  context.occlusion = &occ;
  context.interfaces = &dataset.sessions[session].interfaces();
  context.preference = &dataset.preference;
  context.social_presence = &dataset.social_presence;
  context.body_radius = dataset.body_radius();
  return context;
}

template <typename Model>
void CheckBasicRecommenderContract(Model& model, const Dataset& dataset) {
  model.BeginSession(dataset.num_users(), 1);
  for (int t = 0; t < 5; ++t) {
    const OcclusionGraph occ = BuildOcclusionGraph(
        dataset.sessions[0].PositionsAt(t), 1, dataset.body_radius());
    const auto selection =
        model.Recommend(MakeContext(dataset, occ, 1, t));
    ASSERT_EQ(selection.size(), static_cast<size_t>(dataset.num_users()));
    EXPECT_FALSE(selection[1]);
    int count = 0;
    for (bool b : selection) count += b ? 1 : 0;
    EXPECT_LE(count, 10);  // default budget
  }
}

TEST(TgcnTest, RecommenderContract) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  TgcnRecommender model(0.01, 0.5, 8, 0.5, 31);
  CheckBasicRecommenderContract(model, dataset);
}

TEST(TgcnTest, TrainingReducesLoss) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  TgcnRecommender model(0.01, 0.5, 8, 0.5, 32);
  TrainOptions warmup;
  warmup.epochs = 1;
  warmup.targets_per_epoch = 3;
  warmup.seed = 5;
  model.Train(dataset, warmup);
  const double initial = model.last_training_loss();

  TrainOptions more;
  more.epochs = 10;
  more.targets_per_epoch = 3;
  more.seed = 5;
  model.Train(dataset, more);
  EXPECT_LT(model.last_training_loss(), initial);
}

TEST(DcrnnTest, RecommenderContract) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  DcrnnRecommender model(0.01, 0.5, 8, 0.5, 2, 33);
  CheckBasicRecommenderContract(model, dataset);
}

TEST(DcrnnTest, TrainingReducesLoss) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  DcrnnRecommender model(0.01, 0.5, 8, 0.5, 2, 34);
  TrainOptions warmup;
  warmup.epochs = 1;
  warmup.targets_per_epoch = 3;
  warmup.seed = 6;
  model.Train(dataset, warmup);
  const double initial = model.last_training_loss();

  TrainOptions more;
  more.epochs = 10;
  more.targets_per_epoch = 3;
  more.seed = 6;
  model.Train(dataset, more);
  EXPECT_LT(model.last_training_loss(), initial);
}

TEST(RecurrentBaselineTest, HiddenStateEvolvesAcrossSteps) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  TgcnRecommender model(0.01, 0.5, 8, 0.5, 35);
  model.BeginSession(dataset.num_users(), 0);
  const OcclusionGraph occ0 = BuildOcclusionGraph(
      dataset.sessions[0].PositionsAt(0), 0, dataset.body_radius());
  const auto a = model.Recommend(MakeContext(dataset, occ0, 0, 0));
  // Re-running the same step after state evolved can differ; but after
  // BeginSession it must reproduce exactly (determinism).
  model.BeginSession(dataset.num_users(), 0);
  const auto b = model.Recommend(MakeContext(dataset, occ0, 0, 0));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace after
