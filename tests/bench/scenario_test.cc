// Distribution-shape and determinism tests for the world_sim scenario
// generators (bench/scenario.h). These pin the contracts CI relies on:
// the Zipf sampler matches the configured exponent, the diurnal curve
// apportions to exactly the requested total, reconnect-storm waves
// never exceed the connection budget, and both the plan and the
// co-evolution rewiring are bit-reproducible from a seed.

#include "bench/scenario.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"

namespace after {
namespace bench {
namespace {

TEST(ZipfRoomSizesTest, FollowsConfiguredExponentWithinTolerance) {
  const double exponent = 1.0;
  const auto sizes = ZipfRoomSizes(/*rooms=*/10, /*max_users=*/1000,
                                   /*min_users=*/1, exponent);
  ASSERT_EQ(sizes.size(), 10u);
  // Rank-size law: log(size_r) ~ log(max) - a * log(r+1). Fit the
  // exponent back from the generated sizes and require it within 10%
  // (rounding to integers perturbs the small tail slightly).
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  const int n = static_cast<int>(sizes.size());
  for (int r = 0; r < n; ++r) {
    const double x = std::log(r + 1.0);
    const double y = std::log(static_cast<double>(sizes[r]));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double slope =
      (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
  EXPECT_NEAR(-slope, exponent, 0.1 * exponent);
}

TEST(ZipfRoomSizesTest, ClampsToConfiguredBounds) {
  const auto sizes = ZipfRoomSizes(/*rooms=*/16, /*max_users=*/48,
                                   /*min_users=*/6, /*exponent=*/1.5);
  EXPECT_EQ(sizes.front(), 48);
  for (int size : sizes) {
    EXPECT_GE(size, 6);
    EXPECT_LE(size, 48);
  }
  // Monotone non-increasing by rank.
  EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
}

TEST(DiurnalTest, CurveSpansConfiguredRatio) {
  const auto weights = DiurnalWeights(/*slices=*/24, /*ratio=*/4.0);
  const double lo = *std::min_element(weights.begin(), weights.end());
  const double hi = *std::max_element(weights.begin(), weights.end());
  EXPECT_NEAR(lo, 1.0, 0.05);
  EXPECT_NEAR(hi, 4.0, 0.05);
}

TEST(DiurnalTest, ApportionmentIntegratesToRequestedTotal) {
  for (int total : {1, 17, 1000, 2001}) {
    for (int slices : {1, 7, 8, 24}) {
      const auto weights = DiurnalWeights(slices, 4.0);
      const auto counts = ApportionRequests(weights, total);
      EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), total)
          << "slices=" << slices << " total=" << total;
      for (int count : counts) EXPECT_GE(count, 0);
    }
  }
}

TEST(DiurnalTest, PeakSliceGetsMoreThanTrough) {
  const auto weights = DiurnalWeights(8, 4.0);
  const auto counts = ApportionRequests(weights, 800);
  const auto peak = std::max_element(weights.begin(), weights.end()) -
                    weights.begin();
  const auto trough = std::min_element(weights.begin(), weights.end()) -
                      weights.begin();
  EXPECT_GT(counts[static_cast<size_t>(peak)],
            counts[static_cast<size_t>(trough)]);
}

TEST(ReconnectStormTest, WavesNeverExceedMaxConnections) {
  for (int total : {0, 1, 7, 100, 1000}) {
    for (int max_concurrent : {1, 8, 64}) {
      const auto waves = ReconnectStormWaves(total, max_concurrent);
      int sum = 0;
      for (int wave : waves) {
        EXPECT_GT(wave, 0);
        EXPECT_LE(wave, max_concurrent);
        sum += wave;
      }
      EXPECT_EQ(sum, total);
    }
  }
}

TEST(WorldPlanTest, SameSeedIsBitIdentical) {
  WorldConfig config;
  config.seed = 77;
  const WorldPlan a = BuildWorldPlan(config);
  const WorldPlan b = BuildWorldPlan(config);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (size_t t = 0; t < a.schedule.size(); ++t) {
    ASSERT_EQ(a.schedule[t].size(), b.schedule[t].size());
    for (size_t i = 0; i < a.schedule[t].size(); ++i) {
      EXPECT_EQ(a.schedule[t][i].room, b.schedule[t][i].room);
      EXPECT_EQ(a.schedule[t][i].user, b.schedule[t][i].user);
    }
  }

  WorldConfig other = config;
  other.seed = 78;
  EXPECT_NE(BuildWorldPlan(other).fingerprint, a.fingerprint);
}

TEST(WorldPlanTest, ScheduleMatchesSliceTotalsAndRoomRanges) {
  WorldConfig config;
  config.total_requests = 999;
  const WorldPlan plan = BuildWorldPlan(config);
  ASSERT_EQ(plan.schedule.size(), static_cast<size_t>(config.slices));
  int total = 0;
  for (size_t t = 0; t < plan.schedule.size(); ++t) {
    EXPECT_EQ(static_cast<int>(plan.schedule[t].size()),
              plan.slice_totals[t]);
    total += static_cast<int>(plan.schedule[t].size());
    for (const SliceRequest& request : plan.schedule[t]) {
      ASSERT_GE(request.room, 0);
      ASSERT_LT(request.room, config.rooms);
      ASSERT_GE(request.user, 0);
      ASSERT_LT(request.user,
                plan.room_sizes[static_cast<size_t>(request.room)]);
    }
  }
  EXPECT_EQ(total, config.total_requests);
}

TEST(WorldPlanTest, ChurnConservesPopulation) {
  WorldConfig config;
  config.churn_fraction = 0.2;
  const WorldPlan plan = BuildWorldPlan(config);
  const int initial = std::accumulate(plan.room_sizes.begin(),
                                      plan.room_sizes.end(), 0);
  for (const auto& populations : plan.populations)
    EXPECT_EQ(std::accumulate(populations.begin(), populations.end(), 0),
              initial);
}

TEST(WorldPlanTest, FlashCrowdBoostsSmallRoomsAtPeak) {
  WorldConfig config;
  config.total_requests = 8000;
  config.flash_rooms = 2;
  config.flash_boost = 50.0;
  config.churn_fraction = 0.0;
  // Distinct sizes (no min-clamp ties), so "the two smallest rooms"
  // are unambiguously the two highest ranks.
  config.rooms = 8;
  config.min_room_users = 1;
  const WorldPlan plan = BuildWorldPlan(config);
  // The two smallest rooms are the two highest ranks.
  const int small_a = config.rooms - 1, small_b = config.rooms - 2;
  const auto share_of = [&](int slice_index) {
    const auto& slice = plan.schedule[static_cast<size_t>(slice_index)];
    if (slice.empty()) return 0.0;
    int hits = 0;
    for (const SliceRequest& request : slice)
      if (request.room == small_a || request.room == small_b) ++hits;
    return static_cast<double>(hits) / slice.size();
  };
  const int off_peak = plan.peak_slice == 0 ? 1 : 0;
  EXPECT_GT(share_of(plan.peak_slice), 4.0 * share_of(off_peak));
}

TEST(SocialGraphEvolutionTest, BitReproducibleForFixedSeed) {
  const auto run = [] {
    SocialGraphEvolution evolution(/*num_users=*/12, /*seed=*/42);
    for (int round = 0; round < 200; ++round)
      evolution.Observe(round % 12, (round * 5 + 3) % 12);
    return evolution;
  };
  const SocialGraphEvolution a = run();
  const SocialGraphEvolution b = run();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.accepts(), b.accepts());
  EXPECT_EQ(a.ignores(), b.ignores());
  EXPECT_DOUBLE_EQ(a.DriftL1(), b.DriftL1());

  SocialGraphEvolution other(/*num_users=*/12, /*seed=*/43);
  for (int round = 0; round < 200; ++round)
    other.Observe(round % 12, (round * 5 + 3) % 12);
  EXPECT_NE(other.Fingerprint(), a.Fingerprint());
}

TEST(SocialGraphEvolutionTest, InterleavingOtherPairsDoesNotChangeAPair) {
  // The accept decision hashes (seed, user, candidate, per-pair
  // exposure count), so observations of OTHER pairs interleaved in any
  // order must not change this pair's outcomes.
  SocialGraphEvolution alone(/*num_users=*/8, /*seed=*/7);
  std::vector<bool> alone_outcomes;
  for (int i = 0; i < 32; ++i) alone_outcomes.push_back(alone.Observe(1, 2));

  SocialGraphEvolution interleaved(/*num_users=*/8, /*seed=*/7);
  std::vector<bool> interleaved_outcomes;
  for (int i = 0; i < 32; ++i) {
    interleaved.Observe(3, 4);
    interleaved_outcomes.push_back(interleaved.Observe(1, 2));
    interleaved.Observe(5, 6);
  }
  EXPECT_EQ(alone_outcomes, interleaved_outcomes);
}

TEST(SocialGraphEvolutionTest, AcceptsAddEdgesIgnoresDecayThem) {
  SocialGraphEvolution evolution(/*num_users=*/6, /*seed=*/1,
                                 /*accept_prob=*/1.0);
  EXPECT_TRUE(evolution.Observe(0, 1));
  EXPECT_GT(evolution.DriftL1(), 0.0);
  const double after_accept = evolution.DriftL1();

  SocialGraphEvolution ignore_all(/*num_users=*/6, /*seed=*/1,
                                  /*accept_prob=*/0.0);
  EXPECT_FALSE(ignore_all.Observe(0, 1));
  EXPECT_EQ(ignore_all.DriftL1(), 0.0);  // decaying zero stays zero
  (void)after_accept;
}

TEST(SocialGraphEvolutionTest, BiasUserDriftsTowardAcceptedHubs) {
  SocialGraphEvolution evolution(/*num_users=*/16, /*seed=*/5,
                                 /*accept_prob=*/1.0);
  // Make user 3 a heavy hub.
  for (int other = 0; other < 16; ++other)
    if (other != 3)
      for (int repeat = 0; repeat < 4; ++repeat) evolution.Observe(3, other);
  // Any user whose probe set contains 3 must now prefer it; at minimum
  // the mapping is stable and in range.
  int drawn_to_hub = 0;
  for (int user = 0; user < 16; ++user) {
    const int biased = evolution.BiasUser(user);
    EXPECT_GE(biased, 0);
    EXPECT_LT(biased, 16);
    EXPECT_EQ(biased, evolution.BiasUser(user));  // deterministic
    if (biased == 3 && user != 3) ++drawn_to_hub;
  }
  EXPECT_GT(drawn_to_hub, 0);
}

}  // namespace
}  // namespace bench
}  // namespace after
