#include "common/check.h"

#include <gtest/gtest.h>

namespace after {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  AFTER_CHECK(true);
  AFTER_CHECK_EQ(1, 1);
  AFTER_CHECK_NE(1, 2);
  AFTER_CHECK_LT(1, 2);
  AFTER_CHECK_LE(2, 2);
  AFTER_CHECK_GT(3, 2);
  AFTER_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(AFTER_CHECK(false), "expected false");
}

TEST(CheckDeathTest, FailingOpCheckShowsValues) {
  const int a = 3;
  const int b = 5;
  EXPECT_DEATH(AFTER_CHECK_EQ(a, b), "3 vs 5");
}

TEST(CheckDeathTest, ComparisonDirectionMatters) {
  EXPECT_DEATH(AFTER_CHECK_LT(5, 3), "expected");
  EXPECT_DEATH(AFTER_CHECK_GE(2, 3), "expected");
}

TEST(CheckTest, PassingCheckMsgIsSilentAndDoesNotFormat) {
  int formats = 0;
  auto describe = [&formats]() {
    ++formats;
    return "should not be built";
  };
  AFTER_CHECK_MSG(1 + 1 == 2, describe());
  EXPECT_EQ(formats, 0);  // The message expression is lazily evaluated.
}

TEST(CheckDeathTest, CheckMsgFormatsStreamedOperands) {
  const int rows = 3;
  const int want = 7;
  EXPECT_DEATH(
      AFTER_CHECK_MSG(rows == want,
                      "matrix has " << rows << " rows, want " << want),
      "matrix has 3 rows, want 7");
}

TEST(CheckDeathTest, CheckMsgIncludesConditionText) {
  EXPECT_DEATH(AFTER_CHECK_MSG(false, "context"), "expected false: context");
}

TEST(CheckTest, OperandsEvaluatedOnce) {
  int counter = 0;
  auto bump = [&counter]() { return ++counter; };
  AFTER_CHECK_GE(bump(), 1);
  EXPECT_EQ(counter, 1);
}

}  // namespace
}  // namespace after
