#include "common/geometry.h"

#include <cmath>

#include <gtest/gtest.h>

namespace after {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a(1.0, 2.0);
  const Vec2 b(3.0, -1.0);
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a + b).y, 1.0);
  EXPECT_DOUBLE_EQ((a - b).x, -2.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a(1.0, 0.0);
  const Vec2 b(0.0, 1.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), 1.0);
}

TEST(Vec2Test, NormAndNormalize) {
  const Vec2 v(3.0, 4.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.NormSq(), 25.0);
  const Vec2 unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit.x, 0.6, 1e-12);
  EXPECT_NEAR(unit.y, 0.8, 1e-12);
}

TEST(Vec2Test, NormalizeZeroIsZero) {
  const Vec2 zero(0.0, 0.0);
  EXPECT_DOUBLE_EQ(zero.Normalized().x, 0.0);
  EXPECT_DOUBLE_EQ(zero.Normalized().y, 0.0);
}

TEST(Vec2Test, Perpendicular) {
  const Vec2 v(2.0, 1.0);
  const Vec2 p = v.Perpendicular();
  EXPECT_DOUBLE_EQ(v.Dot(p), 0.0);
  EXPECT_GT(v.Cross(p), 0.0);  // counter-clockwise
}

TEST(Vec2Test, Angle) {
  EXPECT_NEAR(Vec2(1.0, 0.0).Angle(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).Angle(), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).Angle(), M_PI, 1e-12);
  EXPECT_NEAR(Vec2(0.0, -1.0).Angle(), -M_PI / 2.0, 1e-12);
}

TEST(Vec2Test, Distance) {
  EXPECT_DOUBLE_EQ(Distance(Vec2(0.0, 0.0), Vec2(3.0, 4.0)), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Vec2(1.0, 1.0), Vec2(1.0, 1.0)), 0.0);
}

TEST(Vec2Test, CompoundAssign) {
  Vec2 v(1.0, 1.0);
  v += Vec2(2.0, 3.0);
  EXPECT_DOUBLE_EQ(v.x, 3.0);
  EXPECT_DOUBLE_EQ(v.y, 4.0);
}

}  // namespace
}  // namespace after
