#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace after {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextUint64() == b.NextUint64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(37);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWeightedRespectsWeights) {
  Rng rng(41);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, CopyReproducesStream) {
  Rng a(55);
  a.NextUint64();
  Rng b = a;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace after
