#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace after {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidDataError("preference.txt line 3: bad row");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidData);
  EXPECT_EQ(status.message(), "preference.txt line 3: bad row");
  EXPECT_EQ(status.ToString(),
            "INVALID_DATA: preference.txt line 3: bad row");
}

TEST(StatusTest, TaxonomyCoversTheRobustnessCodes) {
  EXPECT_EQ(NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(TimeoutError("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError),
               "NUMERICAL_ERROR");
}

TEST(StatusTest, TaxonomyCoversTheWireCodes) {
  // Added for the networked serving fleet: protocol violations (never
  // retried) vs. unreachable peers (safe to retry on another shard).
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(UnavailableError("peer gone").ToString(),
            "UNAVAILABLE: peer gone");
}

TEST(StatusTest, TaxonomyCoversThePartitionCodes) {
  // Added for room-partitioned serving: "this shard is healthy but not
  // responsible for that room" — the router re-routes, never ejects.
  EXPECT_EQ(NotOwnerError("x").code(), StatusCode::kNotOwner);
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotOwner), "NOT_OWNER");
  EXPECT_EQ(NotOwnerError("room 3 moved").ToString(),
            "NOT_OWNER: room 3 moved");
}

TEST(StatusTest, TaxonomyCoversTheDurabilityCodes) {
  // Added for durable rooms: persisted state that exists but is
  // unrecoverably corrupt (failed checksum, torn beyond salvage) —
  // distinct from kNotFound (never persisted) and kInvalidData (bad
  // input the caller can fix).
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(DataLossError("journal: bad magic").ToString(),
            "DATA_LOSS: journal: bad magic");
}

TEST(StatusTest, AnnotatePrependsContextAndKeepsCode) {
  const Status status =
      InvalidDataError("non-finite entry").Annotate("preference.txt line 7");
  EXPECT_EQ(status.code(), StatusCode::kInvalidData);
  EXPECT_EQ(status.message(), "preference.txt line 7: non-finite entry");
  EXPECT_TRUE(OkStatus().Annotate("ignored").ok());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = [](bool fail) -> Status {
    return fail ? NumericalError("boom") : OkStatus();
  };
  auto outer = [&](bool fail) -> Status {
    AFTER_RETURN_IF_ERROR(inner(fail));
    return OkStatus();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kNumericalError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(InvalidDataError("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidData);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(InvalidDataError("bad"));
  EXPECT_DEATH((void)result.value(), "expected");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH(Result<int>{OkStatus()}, "expected");
}

}  // namespace
}  // namespace after
