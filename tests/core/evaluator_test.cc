#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baselines/nearest_recommender.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "graph/generators.h"

namespace after {
namespace {

/// Recommender that always returns a fixed set.
class FixedRecommender : public Recommender {
 public:
  explicit FixedRecommender(std::vector<bool> selection)
      : selection_(std::move(selection)) {}
  std::string name() const override { return "Fixed"; }
  std::vector<bool> Recommend(const StepContext&) override {
    return selection_;
  }

 private:
  std::vector<bool> selection_;
};

/// Builds a hand-crafted 3-user dataset where everyone stands still:
/// target 0 at origin, user 1 at (2,0), user 2 at (4,0) (behind user 1).
/// All users are VR, so no physical rendering interferes.
Dataset StaticDataset(int steps) {
  Dataset dataset;
  dataset.name = "static";
  dataset.social = SocialGraph(3);
  dataset.social.AddEdge(0, 1, 1.0);
  dataset.preference = Matrix(3, 3);
  dataset.preference.At(0, 1) = 0.6;
  dataset.preference.At(0, 2) = 0.9;
  dataset.social_presence = Matrix(3, 3);
  dataset.social_presence.At(0, 1) = 0.8;
  dataset.social_presence.At(0, 2) = 0.1;

  // Build an XrWorld manually via Generate is awkward; instead use a
  // 1-step crowd by generating and overwriting is not possible, so use
  // the real generator with a fixed tiny config and then verify only the
  // fixed-position logic through a custom world below.
  XrWorld::Config config;
  config.num_users = 3;
  config.vr_fraction = 1.0;  // everyone VR
  config.num_steps = steps;
  config.room_side = 6.0;
  config.max_speed = 0.0;  // agents cannot move
  config.num_gathering_spots = 0;
  Rng rng(1);
  XrWorld world = XrWorld::Generate(config, rng);
  dataset.sessions.push_back(world);
  return dataset;
}

TEST(EvaluatorTest, DefaultTargetsDeterministic) {
  const auto a = DefaultEvalTargets(100, 8, 42);
  const auto b = DefaultEvalTargets(100, 8, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 8u);
}

TEST(EvaluatorTest, DefaultTargetsClampedToPopulation)
{
  const auto t = DefaultEvalTargets(5, 10, 1);
  EXPECT_EQ(t.size(), 5u);
}

TEST(EvaluatorTest, HandComputedUtilities) {
  // Custom static world: positions fixed by max_speed = 0.
  Dataset dataset = StaticDataset(4);
  const auto& start = dataset.sessions[0].PositionsAt(0);
  // Positions are random but frozen; compute expected utility directly
  // from the evaluator's own primitives instead of exact geometry:
  // recommend both users for target 0 and check the accumulation
  // identities AFTER = (1-b)*sum_p_visible + b*sum_s_consecutive.
  FixedRecommender rec({false, true, true});
  EvalOptions options;
  options.targets = {0};
  options.beta = 0.5;
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);

  // Identity check between the aggregate rows.
  EXPECT_NEAR(result.after_utility,
              0.5 * result.preference_utility +
                  0.5 * result.social_presence_utility,
              1e-9);
  // Static scene: whatever is visible at t=0 stays visible; presence
  // accrues from t=1 on (T-1 steps), preference from t=0 (T steps).
  (void)start;
  EXPECT_GT(result.preference_utility, 0.0);
  EXPECT_GE(result.social_presence_utility, 0.0);
}

TEST(EvaluatorTest, BetaZeroIgnoresPresence) {
  Dataset dataset = StaticDataset(3);
  FixedRecommender rec({false, true, true});
  EvalOptions options;
  options.targets = {0};
  options.beta = 0.0;
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_NEAR(result.after_utility, result.preference_utility, 1e-9);
}

TEST(EvaluatorTest, BetaOneIgnoresPreference) {
  Dataset dataset = StaticDataset(3);
  FixedRecommender rec({false, true, true});
  EvalOptions options;
  options.targets = {0};
  options.beta = 1.0;
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_NEAR(result.after_utility, result.social_presence_utility, 1e-9);
}

TEST(EvaluatorTest, EmptyRecommendationYieldsZero) {
  Dataset dataset = StaticDataset(3);
  FixedRecommender rec({false, false, false});
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_DOUBLE_EQ(result.after_utility, 0.0);
  EXPECT_DOUBLE_EQ(result.preference_utility, 0.0);
  EXPECT_DOUBLE_EQ(result.view_occlusion_rate, 0.0);
}

TEST(EvaluatorTest, PerTargetVectorsAligned) {
  DatasetConfig config;
  config.num_users = 15;
  config.num_steps = 6;
  config.num_sessions = 1;
  config.seed = 9;
  const Dataset dataset = GenerateTimikLike(config);
  FixedRecommender rec(std::vector<bool>(15, true));
  EvalOptions options;
  options.targets = {1, 4, 7};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_EQ(result.per_target_after.size(), 3u);
  EXPECT_EQ(result.per_target_preference.size(), 3u);
  EXPECT_EQ(result.per_target_presence.size(), 3u);
  EXPECT_EQ(result.evaluated_targets, (std::vector<int>{1, 4, 7}));
  double mean = 0.0;
  for (double u : result.per_target_after) mean += u;
  mean /= 3.0;
  EXPECT_NEAR(result.after_utility, mean, 1e-9);
}

TEST(EvaluatorTest, OcclusionRateBounds) {
  DatasetConfig config;
  config.num_users = 25;
  config.num_steps = 8;
  config.num_sessions = 1;
  config.seed = 10;
  const Dataset dataset = GenerateSmmLike(config);
  FixedRecommender rec(std::vector<bool>(25, true));
  EvalOptions options;
  options.targets = {0, 5};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_GE(result.view_occlusion_rate, 0.0);
  EXPECT_LE(result.view_occlusion_rate, 1.0);
  // A crowded render-all in a small room must occlude someone.
  EXPECT_GT(result.view_occlusion_rate, 0.05);
}

/// Hand-built scene: target at origin, an unrecommended co-located user
/// at (2,0), and a recommended remote user directly behind at (4,0).
Dataset ForcedRenderingScene(Interface target_interface) {
  Dataset dataset;
  dataset.name = "forced";
  dataset.social = SocialGraph(3);
  dataset.preference = Matrix(3, 3);
  dataset.preference.At(0, 2) = 0.9;
  dataset.social_presence = Matrix(3, 3);
  const std::vector<Interface> interfaces = {
      target_interface, Interface::kMR, Interface::kVR};
  const std::vector<std::vector<Vec2>> trajectory(
      3, {{0, 0}, {2, 0}, {4, 0}});
  dataset.sessions.push_back(
      XrWorld::FromRecorded(interfaces, trajectory, 0.25));
  return dataset;
}

TEST(EvaluatorTest, PhysicalMrUserBlocksMrTargetsView) {
  Dataset dataset = ForcedRenderingScene(Interface::kMR);
  FixedRecommender rec({false, false, true});  // recommend only user 2
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  // The co-located MR body at (2,0) is force-rendered and hides user 2.
  EXPECT_DOUBLE_EQ(result.preference_utility, 0.0);
  EXPECT_DOUBLE_EQ(result.view_occlusion_rate, 1.0);
}

TEST(EvaluatorTest, VrTargetSeesThroughAbsentBodies) {
  Dataset dataset = ForcedRenderingScene(Interface::kVR);
  FixedRecommender rec({false, false, true});
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  // For a remote target nothing is force-rendered: user 2 is clear every
  // step and earns p = 0.9 per step.
  EXPECT_NEAR(result.preference_utility, 0.9 * 3, 1e-9);
  EXPECT_DOUBLE_EQ(result.view_occlusion_rate, 0.0);
}

TEST(EvaluatorTest, ForcedBodyEarnsUtilityOnlyIfRecommended) {
  Dataset dataset = ForcedRenderingScene(Interface::kMR);
  dataset.preference.At(0, 1) = 0.7;
  FixedRecommender rec({false, true, false});  // recommend the MR body
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_NEAR(result.preference_utility, 0.7 * 3, 1e-9);
}

/// Correct-size output, but only after sleeping past any sane budget.
class SleepyRecommender : public Recommender {
 public:
  explicit SleepyRecommender(double sleep_ms) : sleep_ms_(sleep_ms) {}
  std::string name() const override { return "Sleepy"; }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms_));
    return std::vector<bool>(context.positions->size(), false);
  }

 private:
  double sleep_ms_;
};

TEST(EvaluatorTest, DeadlineMissesAreCountedAndDegradeToFallback) {
  Dataset dataset = StaticDataset(4);
  SleepyRecommender slow(5.0);
  NearestRecommender fallback(2);
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  options.fallback = &fallback;
  options.recommend_deadline_ms = 0.5;  // slower than every step
  const EvalResult result = EvaluateRecommender(slow, dataset, options);
  EXPECT_EQ(result.diagnostics.deadline_missed_steps, 4);
  EXPECT_EQ(result.diagnostics.fallback_steps, 4);
  EXPECT_FALSE(result.diagnostics.clean());
  // Scored answers are the fallback's, which recommends someone.
  EXPECT_GT(result.avg_recommended_per_step, 0.0);

  // Without a deadline the same recommender runs clean (and scores 0).
  SleepyRecommender slow2(1.0);
  options.recommend_deadline_ms = 0.0;
  const EvalResult clean = EvaluateRecommender(slow2, dataset, options);
  EXPECT_EQ(clean.diagnostics.deadline_missed_steps, 0);
  EXPECT_TRUE(clean.diagnostics.clean());
}

TEST(EvaluatorTest, RuntimeMeasured) {
  Dataset dataset = StaticDataset(3);
  FixedRecommender rec({false, true, false});
  EvalOptions options;
  options.targets = {0};
  options.session = 0;
  const EvalResult result = EvaluateRecommender(rec, dataset, options);
  EXPECT_GE(result.running_time_ms, 0.0);
  EXPECT_LT(result.running_time_ms, 50.0);
  EXPECT_EQ(result.steps_per_session, 3);
}

}  // namespace
}  // namespace after
