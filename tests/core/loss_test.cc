#include "core/loss.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

TEST(PoshgnnLossTest, MatchesManualComputation) {
  // 3 users, r = [1, 0, 1], r_prev = [1, 1, 0], edge (0, 2).
  const Matrix r = Matrix::ColumnVector({1.0, 0.0, 1.0});
  const Matrix r_prev = Matrix::ColumnVector({1.0, 1.0, 0.0});
  const Matrix p = Matrix::ColumnVector({0.5, 0.3, 0.8});
  const Matrix s = Matrix::ColumnVector({0.2, 0.9, 0.4});
  Matrix a(3, 3);
  a.At(0, 2) = a.At(2, 0) = 1.0;
  const double alpha = 0.01;
  const double beta = 0.5;

  // By hand: pref gain = r·p = 1.3; presence gain = (r⊗r_prev)·s = 0.2;
  // penalty = rᵀAr = 2 (edge counted in both directions);
  // gamma = 0.5·1.6 + 0.5·1.5 = 1.55.
  const double expected =
      -0.5 * 1.3 - 0.5 * 0.2 + 0.01 * 2.0 + 1.55;

  EXPECT_NEAR(PoshgnnStepLossValue(r, r_prev, p, s, a, alpha, beta),
              expected, 1e-12);

  const Variable loss = PoshgnnStepLoss(
      Variable::Constant(r), Variable::Constant(r_prev),
      Variable::Constant(p), Variable::Constant(s), Variable::Constant(a),
      alpha, beta);
  EXPECT_NEAR(loss.value().At(0, 0), expected, 1e-12);
}

TEST(PoshgnnLossTest, NonNegativeForProbabilityVectors) {
  // gamma is designed to keep the loss positive for r in [0,1]^n.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 5 + rng.UniformInt(10);
    Matrix r(n, 1), r_prev(n, 1), p(n, 1), s(n, 1);
    for (int i = 0; i < n; ++i) {
      r.At(i, 0) = rng.Uniform();
      r_prev.At(i, 0) = rng.Uniform();
      p.At(i, 0) = rng.Uniform();
      s.At(i, 0) = rng.Uniform();
    }
    Matrix a(n, n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.Bernoulli(0.3)) a.At(i, j) = a.At(j, i) = 1.0;
    const double value =
        PoshgnnStepLossValue(r, r_prev, p, s, a, 0.01, 0.5);
    EXPECT_GE(value, 0.0) << "trial " << trial;
  }
}

TEST(PoshgnnLossTest, RecommendingPreferredUsersLowersLoss) {
  const Matrix p = Matrix::ColumnVector({0.9, 0.1});
  const Matrix s = Matrix::ColumnVector({0.0, 0.0});
  const Matrix r_prev = Matrix::ColumnVector({0.0, 0.0});
  const Matrix a(2, 2);
  const Matrix good = Matrix::ColumnVector({1.0, 0.0});
  const Matrix bad = Matrix::ColumnVector({0.0, 1.0});
  EXPECT_LT(PoshgnnStepLossValue(good, r_prev, p, s, a, 0.01, 0.5),
            PoshgnnStepLossValue(bad, r_prev, p, s, a, 0.01, 0.5));
}

TEST(PoshgnnLossTest, ContinuityRewarded) {
  // Recommending the previously-seen friend beats switching, all else
  // equal.
  const Matrix p = Matrix::ColumnVector({0.5, 0.5});
  const Matrix s = Matrix::ColumnVector({0.8, 0.8});
  const Matrix a(2, 2);
  const Matrix r_prev = Matrix::ColumnVector({1.0, 0.0});
  const Matrix keep = Matrix::ColumnVector({1.0, 0.0});
  const Matrix swap = Matrix::ColumnVector({0.0, 1.0});
  EXPECT_LT(PoshgnnStepLossValue(keep, r_prev, p, s, a, 0.01, 0.5),
            PoshgnnStepLossValue(swap, r_prev, p, s, a, 0.01, 0.5));
}

TEST(PoshgnnLossTest, OcclusionPenalized) {
  const Matrix p = Matrix::ColumnVector({0.5, 0.5, 0.5});
  const Matrix s(3, 1);
  const Matrix r_prev(3, 1);
  Matrix with_edge(3, 3);
  with_edge.At(0, 1) = with_edge.At(1, 0) = 1.0;
  const Matrix no_edge(3, 3);
  const Matrix r = Matrix::ColumnVector({1.0, 1.0, 0.0});
  EXPECT_GT(
      PoshgnnStepLossValue(r, r_prev, p, s, with_edge, 0.05, 0.5),
      PoshgnnStepLossValue(r, r_prev, p, s, no_edge, 0.05, 0.5));
}

TEST(PoshgnnLossTest, AlphaScalesPenalty) {
  const Matrix p(2, 1);
  const Matrix s(2, 1);
  const Matrix r_prev(2, 1);
  Matrix a(2, 2);
  a.At(0, 1) = a.At(1, 0) = 1.0;
  const Matrix r = Matrix::ColumnVector({1.0, 1.0});
  const double l1 = PoshgnnStepLossValue(r, r_prev, p, s, a, 0.01, 0.5);
  const double l2 = PoshgnnStepLossValue(r, r_prev, p, s, a, 0.02, 0.5);
  EXPECT_NEAR(l2 - l1, 0.01 * 2.0, 1e-12);
}

TEST(PoshgnnLossTest, BetaTradesOffTerms) {
  const Matrix p = Matrix::ColumnVector({1.0});
  const Matrix s = Matrix::ColumnVector({0.0});
  const Matrix r = Matrix::ColumnVector({1.0});
  const Matrix r_prev = Matrix::ColumnVector({1.0});
  const Matrix a(1, 1);
  // With beta = 0 the loss is -p + gamma = -1 + 1 = 0.
  EXPECT_NEAR(PoshgnnStepLossValue(r, r_prev, p, s, a, 0.0, 0.0), 0.0,
              1e-12);
  // With beta = 1 the preference term vanishes; gamma = s = 0 so loss 0
  // (presence is 0 here).
  EXPECT_NEAR(PoshgnnStepLossValue(r, r_prev, p, s, a, 0.0, 1.0), 0.0,
              1e-12);
}

TEST(PoshgnnLossTest, GradientFlowsToRecommendation) {
  Rng rng(5);
  const Matrix p = Matrix::ColumnVector({0.5, 0.7, 0.2});
  const Matrix s = Matrix::ColumnVector({0.1, 0.3, 0.9});
  const Matrix r_prev = Matrix::ColumnVector({1.0, 0.0, 1.0});
  Matrix a(3, 3);
  a.At(0, 1) = a.At(1, 0) = 1.0;
  const Matrix point = Matrix::ColumnVector({0.4, 0.6, 0.5});

  Variable r = Variable::Parameter(point);
  Variable loss = PoshgnnStepLoss(
      r, Variable::Constant(r_prev), Variable::Constant(p),
      Variable::Constant(s), Variable::Constant(a), 0.01, 0.5);
  loss.Backward();

  const Matrix numeric = NumericalGradient(
      [&](const Matrix& probe) {
        return PoshgnnStepLossValue(probe, r_prev, p, s, a, 0.01, 0.5);
      },
      point);
  EXPECT_TRUE(r.grad().AllClose(numeric, 1e-6));
}

}  // namespace
}  // namespace after
