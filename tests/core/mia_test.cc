#include "core/mia.h"

#include <gtest/gtest.h>

#include "graph/occlusion_converter.h"

namespace after {
namespace {

constexpr double kBody = 0.25;

/// A deterministic 4-user scene: target 0 at origin (MR); user 1 near MR;
/// user 2 directly behind user 1 (VR, physically blocked); user 3 to the
/// side (VR).
struct Scene {
  std::vector<Vec2> positions = {{0, 0}, {1.5, 0}, {3.0, 0}, {0, 2}};
  std::vector<Interface> interfaces = {Interface::kMR, Interface::kMR,
                                       Interface::kVR, Interface::kVR};
  Matrix preference = Matrix(4, 4, 0.8);
  Matrix social_presence = Matrix(4, 4, 0.5);
  OcclusionGraph occlusion;
  double beta = 0.5;

  Scene() : occlusion(BuildOcclusionGraph(positions, 0, kBody)) {
    for (int i = 0; i < 4; ++i) {
      preference.At(i, i) = 0.0;
      social_presence.At(i, i) = 0.0;
    }
  }

  StepContext Context(int t = 0) {
    StepContext context;
    context.t = t;
    context.target = 0;
    context.positions = &positions;
    context.occlusion = &occlusion;
    context.interfaces = &interfaces;
    context.preference = &preference;
    context.social_presence = &social_presence;
    context.beta = beta;
    context.body_radius = kBody;
    return context;
  }
};

TEST(MiaTest, PhysicallyBlockedDetection) {
  Scene scene;
  const auto blocked = Mia::PhysicallyBlocked(scene.Context());
  EXPECT_FALSE(blocked[0]);
  EXPECT_FALSE(blocked[1]);  // nearest MR body, nothing in front
  EXPECT_TRUE(blocked[2]);   // behind MR user 1
  EXPECT_FALSE(blocked[3]);  // clear line of sight
}

TEST(MiaTest, VrTargetHasNoPhysicalBlocking) {
  Scene scene;
  scene.interfaces[0] = Interface::kVR;
  const auto blocked = Mia::PhysicallyBlocked(scene.Context());
  for (bool b : blocked) EXPECT_FALSE(b);
}

TEST(MiaTest, MaskZeroesTargetAndBlocked) {
  Scene scene;
  Mia mia;
  const MiaOutput out = mia.Process(scene.Context());
  EXPECT_DOUBLE_EQ(out.mask.At(0, 0), 0.0);  // target
  EXPECT_DOUBLE_EQ(out.mask.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(out.mask.At(2, 0), 0.0);  // physically blocked
  EXPECT_DOUBLE_EQ(out.mask.At(3, 0), 1.0);
}

TEST(MiaTest, UtilitiesNormalizedByScaledDistanceSquared) {
  Scene scene;
  Mia mia;
  const MiaOutput out = mia.Process(scene.Context());
  // distance_scale = 5 (StepContext default).
  // User 1 at distance 1.5: p̂ = 0.8 / (1 + 0.3²).
  EXPECT_NEAR(out.p_hat.At(1, 0), 0.8 / 1.09, 1e-12);
  EXPECT_NEAR(out.s_hat.At(1, 0), 0.5 / 1.09, 1e-12);
  // User 3 at distance 2: p̂ = 0.8 / (1 + 0.4²).
  EXPECT_NEAR(out.p_hat.At(3, 0), 0.8 / 1.16, 1e-12);
  // Blocked user 2 pruned to zero despite nonzero preference.
  EXPECT_DOUBLE_EQ(out.p_hat.At(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.s_hat.At(2, 0), 0.0);
  // Target row zero.
  EXPECT_DOUBLE_EQ(out.p_hat.At(0, 0), 0.0);
}

TEST(MiaTest, FeatureColumnsLayout) {
  Scene scene;
  Mia mia;
  const MiaOutput out = mia.Process(scene.Context());
  ASSERT_EQ(out.features.cols(), 4);
  // Column 2 = distance, column 3 = interface flag (MR = 1).
  EXPECT_NEAR(out.features.At(1, 2), 1.5, 1e-12);
  EXPECT_NEAR(out.features.At(3, 2), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.features.At(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(out.features.At(3, 3), 0.0);
}

TEST(MiaTest, AdjacencyMatchesOcclusionGraph) {
  Scene scene;
  Mia mia;
  const MiaOutput out = mia.Process(scene.Context());
  EXPECT_TRUE(out.adjacency.AllClose(scene.occlusion.ToAdjacencyMatrix()));
}

TEST(MiaTest, DeltaFirstStepIsBaseline) {
  Scene scene;
  Mia mia;
  const MiaOutput out = mia.Process(scene.Context());
  for (int w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(out.delta.At(w, 0), 1.0);  // e0
    EXPECT_DOUBLE_EQ(out.delta.At(w, 1), 0.0);  // no previous step yet
    EXPECT_DOUBLE_EQ(out.delta.At(w, 2), 0.0);
  }
}

TEST(MiaTest, DeltaCapturesStructuralChange) {
  Scene scene;
  Mia mia;
  mia.Process(scene.Context(0));

  // Move user 2 sideways so the (1,2) occlusion edge disappears.
  scene.positions[2] = Vec2(-2.0, -2.0);
  scene.occlusion = BuildOcclusionGraph(scene.positions, 0, kBody);
  const MiaOutput out = mia.Process(scene.Context(1));

  // e1 row sums of (A_1 - A_0): users 1 and 2 each lost one edge.
  EXPECT_DOUBLE_EQ(out.delta.At(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(out.delta.At(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(out.delta.At(3, 1), 0.0);
}

TEST(MiaTest, DeltaSecondOrderMatchesMatrixSquares) {
  Scene scene;
  Mia mia;
  const Matrix a0 = scene.occlusion.ToAdjacencyMatrix();
  mia.Process(scene.Context(0));
  scene.positions[2] = Vec2(0.5, 1.8);
  scene.occlusion = BuildOcclusionGraph(scene.positions, 0, kBody);
  const Matrix a1 = scene.occlusion.ToAdjacencyMatrix();
  const MiaOutput out = mia.Process(scene.Context(1));

  const Matrix ones(4, 1, 1.0);
  const Matrix expected =
      (a1.MatMul(a1) - a0.MatMul(a0)).MatMul(ones);
  for (int w = 0; w < 4; ++w)
    EXPECT_NEAR(out.delta.At(w, 2), expected.At(w, 0), 1e-9);
}

TEST(MiaTest, BlocklistZeroesMaskAndUtilities) {
  Scene scene;
  std::vector<bool> blocklist = {false, true, false, false};
  StepContext context = scene.Context();
  context.blocklist = &blocklist;
  Mia mia;
  const MiaOutput out = mia.Process(context);
  EXPECT_DOUBLE_EQ(out.mask.At(1, 0), 0.0);   // blocklisted
  EXPECT_DOUBLE_EQ(out.p_hat.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.s_hat.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.mask.At(3, 0), 1.0);   // untouched
  EXPECT_GT(out.p_hat.At(3, 0), 0.0);
}

TEST(MiaTest, BlocklistComposesWithPhysicalPruning) {
  Scene scene;
  std::vector<bool> blocklist = {false, false, false, true};
  StepContext context = scene.Context();
  context.blocklist = &blocklist;
  Mia mia;
  const MiaOutput out = mia.Process(context);
  // User 2 pruned physically, user 3 pruned by blocklist.
  EXPECT_DOUBLE_EQ(out.mask.At(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.mask.At(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.mask.At(1, 0), 1.0);
}

TEST(MiaTest, ResetForgetsHistory) {
  Scene scene;
  Mia mia;
  mia.Process(scene.Context(0));
  mia.Reset();
  const MiaOutput out = mia.Process(scene.Context(1));
  for (int w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(out.delta.At(w, 1), 0.0);
    EXPECT_DOUBLE_EQ(out.delta.At(w, 2), 0.0);
  }
}

}  // namespace
}  // namespace after
