#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lwp.h"
#include "core/pdr.h"

namespace after {
namespace {

TEST(PdrTest, OutputShapes) {
  Rng rng(1);
  Pdr pdr(4, 8, rng);
  Variable x = Variable::Constant(Matrix::Randn(10, 4, 1.0, rng));
  Variable a = Variable::Constant(Matrix(10, 10));
  const Pdr::Output out = pdr.Forward(x, a);
  EXPECT_EQ(out.hidden.rows(), 10);
  EXPECT_EQ(out.hidden.cols(), 8);
  EXPECT_EQ(out.recommendation.rows(), 10);
  EXPECT_EQ(out.recommendation.cols(), 1);
}

TEST(PdrTest, RecommendationIsProbability) {
  Rng rng(2);
  Pdr pdr(4, 8, rng);
  Variable x = Variable::Constant(Matrix::Randn(20, 4, 3.0, rng));
  Matrix adj(20, 20);
  adj.At(0, 1) = adj.At(1, 0) = 1.0;
  const Pdr::Output out = pdr.Forward(x, Variable::Constant(adj));
  for (int i = 0; i < 20; ++i) {
    EXPECT_GT(out.recommendation.value().At(i, 0), 0.0);
    EXPECT_LT(out.recommendation.value().At(i, 0), 1.0);
  }
}

TEST(PdrTest, HiddenStateNonNegative) {
  Rng rng(3);
  Pdr pdr(4, 8, rng);
  Variable x = Variable::Constant(Matrix::Randn(6, 4, 1.0, rng));
  const Pdr::Output out = pdr.Forward(x, Variable::Constant(Matrix(6, 6)));
  for (int i = 0; i < out.hidden.value().size(); ++i)
    EXPECT_GE(out.hidden.value()[static_cast<size_t>(i)], 0.0);  // ReLU
}

TEST(PdrTest, ParameterCount) {
  Rng rng(4);
  Pdr pdr(4, 8, rng);
  // Two GCN layers x (M1, M2, bias).
  EXPECT_EQ(pdr.Parameters().size(), 6u);
}

TEST(PdrTest, AdjacencyInfluencesOutput) {
  Rng rng(5);
  Pdr pdr(4, 8, rng);
  Variable x = Variable::Constant(Matrix::Randn(6, 4, 1.0, rng));
  Matrix adj(6, 6);
  adj.At(0, 1) = adj.At(1, 0) = 1.0;
  const Matrix with_edge =
      pdr.Forward(x, Variable::Constant(adj)).recommendation.value();
  const Matrix without =
      pdr.Forward(x, Variable::Constant(Matrix(6, 6)))
          .recommendation.value();
  EXPECT_FALSE(with_edge.AllClose(without, 1e-9));
}

TEST(LwpTest, SigmaInUnitInterval) {
  Rng rng(6);
  const int in = 4 + 3 + 8 + 1;
  Lwp lwp(in, 8, rng);
  Variable x = Variable::Constant(Matrix::Randn(12, in, 2.0, rng));
  const Matrix sigma =
      lwp.Forward(x, Variable::Constant(Matrix(12, 12))).value();
  for (int i = 0; i < 12; ++i) {
    EXPECT_GT(sigma.At(i, 0), 0.0);
    EXPECT_LT(sigma.At(i, 0), 1.0);
  }
}

TEST(LwpTest, ParameterCount) {
  Rng rng(7);
  Lwp lwp(16, 8, rng);
  EXPECT_EQ(lwp.Parameters().size(), 9u);  // 3 GCN layers x 3 params
}

TEST(PreservationGateTest, PureGateValues) {
  // sigma = 0 -> prototype; sigma = 1 -> previous.
  const Matrix prototype = Matrix::ColumnVector({0.9, 0.1});
  const Matrix previous = Matrix::ColumnVector({0.2, 0.8});
  const Matrix mask(2, 1, 1.0);

  const Matrix keep_new =
      PreservationGate(Variable::Constant(mask),
                       Variable::Constant(Matrix(2, 1, 0.0)),
                       Variable::Constant(prototype),
                       Variable::Constant(previous))
          .value();
  EXPECT_TRUE(keep_new.AllClose(prototype));

  const Matrix keep_old =
      PreservationGate(Variable::Constant(mask),
                       Variable::Constant(Matrix(2, 1, 1.0)),
                       Variable::Constant(prototype),
                       Variable::Constant(previous))
          .value();
  EXPECT_TRUE(keep_old.AllClose(previous));
}

TEST(PreservationGateTest, ConvexCombination) {
  const Matrix prototype = Matrix::ColumnVector({1.0});
  const Matrix previous = Matrix::ColumnVector({0.0});
  const Matrix mask(1, 1, 1.0);
  const Matrix sigma = Matrix::ColumnVector({0.3});
  const Matrix out =
      PreservationGate(Variable::Constant(mask), Variable::Constant(sigma),
                       Variable::Constant(prototype),
                       Variable::Constant(previous))
          .value();
  EXPECT_NEAR(out.At(0, 0), 0.7, 1e-12);
}

TEST(PreservationGateTest, MaskZeroesOutput) {
  const Matrix prototype = Matrix::ColumnVector({0.9, 0.9});
  const Matrix previous = Matrix::ColumnVector({0.9, 0.9});
  const Matrix mask = Matrix::ColumnVector({0.0, 1.0});
  const Matrix sigma = Matrix::ColumnVector({0.5, 0.5});
  const Matrix out =
      PreservationGate(Variable::Constant(mask), Variable::Constant(sigma),
                       Variable::Constant(prototype),
                       Variable::Constant(previous))
          .value();
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_NEAR(out.At(1, 0), 0.9, 1e-12);
}

TEST(PreservationGateTest, OutputStaysInUnitInterval) {
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5;
    Matrix prototype(n, 1), previous(n, 1), sigma(n, 1), mask(n, 1);
    for (int i = 0; i < n; ++i) {
      prototype.At(i, 0) = rng.Uniform();
      previous.At(i, 0) = rng.Uniform();
      sigma.At(i, 0) = rng.Uniform();
      mask.At(i, 0) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    }
    const Matrix out =
        PreservationGate(Variable::Constant(mask), Variable::Constant(sigma),
                         Variable::Constant(prototype),
                         Variable::Constant(previous))
            .value();
    for (int i = 0; i < n; ++i) {
      EXPECT_GE(out.At(i, 0), 0.0);
      EXPECT_LE(out.At(i, 0), 1.0);
    }
  }
}

}  // namespace
}  // namespace after
