#include "core/poshgnn.h"

#include <gtest/gtest.h>

#include <deque>

#include "core/evaluator.h"
#include "core/loss.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

DatasetConfig TinyConfig() {
  DatasetConfig config;
  config.num_users = 20;
  config.num_steps = 12;
  config.num_sessions = 2;
  config.room_side = 6.0;
  config.seed = 5;
  return config;
}

PoshgnnConfig ModelConfig() {
  PoshgnnConfig config;
  config.hidden_dim = 8;
  config.seed = 9;
  return config;
}

TEST(PoshgnnTest, NameReflectsAblation) {
  PoshgnnConfig full = ModelConfig();
  EXPECT_EQ(Poshgnn(full).name(), "POSHGNN");
  full.use_lwp = false;
  EXPECT_EQ(Poshgnn(full).name(), "PDR w/ MIA");
  full.use_mia = false;
  EXPECT_EQ(Poshgnn(full).name(), "Only PDR");
}

TEST(PoshgnnTest, ParametersIncludeLwpOnlyWhenEnabled) {
  PoshgnnConfig config = ModelConfig();
  const size_t full_count = Poshgnn(config).Parameters().size();
  config.use_lwp = false;
  const size_t pdr_count = Poshgnn(config).Parameters().size();
  EXPECT_EQ(pdr_count, 6u);        // 2 GCN layers
  EXPECT_EQ(full_count, 6u + 9u);  // + 3 LWP layers
}

TEST(PoshgnnTest, RecommendationExcludesTargetAndRespectsBudget) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  PoshgnnConfig config = ModelConfig();
  config.max_recommendations = 5;
  Poshgnn model(config);
  model.BeginSession(dataset.num_users(), 3);

  const XrWorld& world = dataset.sessions[0];
  for (int t = 0; t < 5; ++t) {
    const OcclusionGraph occlusion = BuildOcclusionGraph(
        world.PositionsAt(t), 3, world.body_radius());
    StepContext context;
    context.t = t;
    context.target = 3;
    context.positions = &world.PositionsAt(t);
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.body_radius = world.body_radius();

    const std::vector<bool> rec = model.Recommend(context);
    EXPECT_FALSE(rec[3]);
    int count = 0;
    for (bool b : rec) count += b ? 1 : 0;
    EXPECT_LE(count, 5);
  }
}

TEST(PoshgnnTest, TrainingReducesLoss) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn model(ModelConfig());

  TrainOptions warmup;
  warmup.epochs = 1;
  warmup.targets_per_epoch = 3;
  warmup.seed = 77;
  model.Train(dataset, warmup);
  const double initial_loss = model.last_training_loss();

  TrainOptions more;
  more.epochs = 12;
  more.targets_per_epoch = 3;
  more.seed = 77;
  model.Train(dataset, more);
  EXPECT_LT(model.last_training_loss(), initial_loss);
}

TEST(PoshgnnTest, TrainedModelBeatsUntrainedOnLoss) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  PoshgnnConfig config = ModelConfig();
  Poshgnn trained(config);
  TrainOptions train;
  train.epochs = 10;
  train.targets_per_epoch = 4;
  train.seed = 3;
  trained.Train(dataset, train);

  Poshgnn untrained(config);

  // Compare total POSHGNN loss on a held-out rollout for one target.
  auto rollout_loss = [&](Poshgnn& model) {
    const XrWorld& world = dataset.sessions[1];
    const int target = 7;
    const int n = dataset.num_users();
    model.BeginSession(n, target);
    Mia mia;
    Matrix r_prev(n, 1);
    double total = 0.0;
    for (int t = 0; t < world.num_steps(); ++t) {
      const OcclusionGraph occlusion = BuildOcclusionGraph(
          world.PositionsAt(t), target, world.body_radius());
      StepContext context;
      context.t = t;
      context.target = target;
      context.positions = &world.PositionsAt(t);
      context.occlusion = &occlusion;
      context.interfaces = &world.interfaces();
      context.preference = &dataset.preference;
      context.social_presence = &dataset.social_presence;
      context.body_radius = world.body_radius();

      const MiaOutput agg = model.Aggregate(context);
      const Poshgnn::StepResult step = model.StepOnTape(
          agg, Variable::Constant(r_prev),
          Variable::Constant(Matrix(n, model.config().hidden_dim)));
      total += PoshgnnStepLossValue(step.recommendation.value(), r_prev,
                                    agg.p_hat, agg.s_hat, agg.adjacency,
                                    model.config().alpha,
                                    model.config().beta);
      r_prev = step.recommendation.value();
    }
    return total / world.num_steps();
  };

  EXPECT_LT(rollout_loss(trained), rollout_loss(untrained));
}

TEST(PoshgnnTest, StepOnTapeOutputInUnitInterval) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn model(ModelConfig());
  const int n = dataset.num_users();
  const XrWorld& world = dataset.sessions[0];
  const OcclusionGraph occlusion =
      BuildOcclusionGraph(world.PositionsAt(0), 0, world.body_radius());
  StepContext context;
  context.target = 0;
  context.positions = &world.PositionsAt(0);
  context.occlusion = &occlusion;
  context.interfaces = &world.interfaces();
  context.preference = &dataset.preference;
  context.social_presence = &dataset.social_presence;
  context.body_radius = world.body_radius();

  const MiaOutput agg = model.Aggregate(context);
  const Poshgnn::StepResult step = model.StepOnTape(
      agg, Variable::Constant(Matrix(n, 1, 0.5)),
      Variable::Constant(Matrix(n, 8)));
  for (int w = 0; w < n; ++w) {
    EXPECT_GE(step.recommendation.value().At(w, 0), 0.0);
    EXPECT_LE(step.recommendation.value().At(w, 0), 1.0);
  }
  // Target is masked to zero.
  EXPECT_DOUBLE_EQ(step.recommendation.value().At(0, 0), 0.0);
}

TEST(PoshgnnTest, OnlyPdrAblationIgnoresMiaNormalization) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  PoshgnnConfig config = ModelConfig();
  config.use_mia = false;
  Poshgnn model(config);
  const XrWorld& world = dataset.sessions[0];
  const OcclusionGraph occlusion =
      BuildOcclusionGraph(world.PositionsAt(0), 2, world.body_radius());
  StepContext context;
  context.target = 2;
  context.positions = &world.PositionsAt(0);
  context.occlusion = &occlusion;
  context.interfaces = &world.interfaces();
  context.preference = &dataset.preference;
  context.social_presence = &dataset.social_presence;
  context.body_radius = world.body_radius();

  const MiaOutput agg = model.Aggregate(context);
  // Raw aggregation: p_hat equals the raw preference row.
  for (int w = 0; w < dataset.num_users(); ++w) {
    if (w == 2) continue;
    EXPECT_DOUBLE_EQ(agg.p_hat.At(w, 0), dataset.preference.At(2, w));
  }
  // Delta carries no structural signal.
  for (int w = 0; w < dataset.num_users(); ++w) {
    EXPECT_DOUBLE_EQ(agg.delta.At(w, 1), 0.0);
    EXPECT_DOUBLE_EQ(agg.delta.At(w, 2), 0.0);
  }
}

// Bundles a StepContext with the occlusion graph it points into, so
// the graph outlives the context in test helpers.
struct BoundContext {
  BoundContext(const Dataset& dataset, int session, int t, int target)
      : occlusion(BuildOcclusionGraph(
            dataset.sessions[session].PositionsAt(t), target,
            dataset.sessions[session].body_radius())) {
    const XrWorld& world = dataset.sessions[session];
    context.t = t;
    context.target = target;
    context.positions = &world.PositionsAt(t);
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.body_radius = world.body_radius();
  }
  OcclusionGraph occlusion;
  StepContext context;
};

Poshgnn TrainedModel(const Dataset& dataset) {
  Poshgnn model(ModelConfig());
  TrainOptions train;
  train.epochs = 4;
  train.targets_per_epoch = 3;
  train.seed = 21;
  model.Train(dataset, train);
  EXPECT_TRUE(model.last_train_status().ok());
  return model;
}

TEST(FrozenPoshgnnTest, BitExactAgainstMutableAtSessionStart) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn mutable_model = TrainedModel(dataset);
  // Bit-exactness is the reference f64 engine's contract; the fused f32
  // engine is tolerance-equal instead (tests/infer/engine_test.cc).
  FrozenPoshgnn frozen(mutable_model, InferEngine::kReferenceF64);
  EXPECT_EQ(frozen.engine(), InferEngine::kReferenceF64);
  EXPECT_TRUE(frozen.thread_safe());
  EXPECT_FALSE(mutable_model.thread_safe());
  EXPECT_EQ(frozen.name(), "POSHGNN (frozen)");

  // Every frozen Recommend is a session-start step, so it must match
  // the mutable model's first post-BeginSession recommendation exactly.
  for (int target : {0, 3, 11}) {
    BoundContext bound(dataset, 0, 0, target);
    mutable_model.BeginSession(dataset.num_users(), target);
    const std::vector<bool> want = mutable_model.Recommend(bound.context);
    const std::vector<bool> got = frozen.Recommend(bound.context);
    EXPECT_EQ(got, want) << "target " << target;
  }
}

TEST(FrozenPoshgnnTest, ArtifactFileRoundTripPreservesOutputs) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn model = TrainedModel(dataset);
  const std::string path =
      std::string(::testing::TempDir()) + "/poshgnn_roundtrip.after";
  ASSERT_TRUE(model.ToArtifact().Save(path).ok());

  auto reloaded = FrozenPoshgnn::FromArtifactFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  FrozenPoshgnn direct(model);
  for (int target : {2, 9}) {
    BoundContext bound(dataset, 1, 0, target);
    EXPECT_EQ(reloaded.value()->Recommend(bound.context),
              direct.Recommend(bound.context))
        << "target " << target;
  }
}

TEST(FrozenPoshgnnTest, RecommendBatchMatchesSequentialRecommend) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn model = TrainedModel(dataset);
  FrozenPoshgnn frozen(model);

  // Deque keeps each BoundContext (and the occlusion graph its context
  // points into) at a stable address while we append.
  std::deque<BoundContext> bound;
  std::vector<StepContext> contexts;
  for (int target : {0, 5, 5, 13}) {
    bound.emplace_back(dataset, 0, 0, target);
  }
  for (const BoundContext& b : bound) contexts.push_back(b.context);

  const std::vector<std::vector<bool>> batched =
      frozen.RecommendBatch(contexts);
  ASSERT_EQ(batched.size(), contexts.size());
  for (size_t i = 0; i < contexts.size(); ++i) {
    EXPECT_EQ(batched[i], frozen.Recommend(contexts[i])) << "slot " << i;
  }
}

TEST(FrozenPoshgnnTest, FromArtifactRejectsMismatchedArchitecture) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  Poshgnn model = TrainedModel(dataset);
  ModelArtifact artifact = model.ToArtifact();

  ModelArtifact wrong_kind = artifact;
  wrong_kind.kind = "SOMETHING_ELSE";
  EXPECT_EQ(FrozenPoshgnn::FromArtifact(wrong_kind).status().code(),
            StatusCode::kInvalidData);

  ModelArtifact missing_field = artifact;
  missing_field.metadata.erase("hidden_dim");
  EXPECT_EQ(FrozenPoshgnn::FromArtifact(missing_field).status().code(),
            StatusCode::kInvalidData);

  // hidden_dim lies about the parameter shapes: LoadArtifact must
  // reject during the shape check rather than corrupt the model.
  ModelArtifact wrong_dim = artifact;
  wrong_dim.metadata["hidden_dim"] = "16";
  EXPECT_EQ(FrozenPoshgnn::FromArtifact(wrong_dim).status().code(),
            StatusCode::kInvalidData);
}

TEST(FrozenPoshgnnTest, ConfigFromArtifactRestoresArchitecture) {
  PoshgnnConfig config = ModelConfig();
  config.use_lwp = false;
  config.beta = 0.75;
  config.max_recommendations = 4;
  Poshgnn model(config);

  auto restored = PoshgnnConfigFromArtifact(model.ToArtifact());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().hidden_dim, config.hidden_dim);
  EXPECT_FALSE(restored.value().use_lwp);
  EXPECT_TRUE(restored.value().use_mia);
  EXPECT_DOUBLE_EQ(restored.value().beta, 0.75);
  EXPECT_EQ(restored.value().max_recommendations, 4);
}

TEST(PoshgnnTest, DeterministicGivenSeeds) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  auto run = [&] {
    Poshgnn model(ModelConfig());
    TrainOptions train;
    train.epochs = 2;
    train.targets_per_epoch = 2;
    train.seed = 55;
    model.Train(dataset, train);
    return model.last_training_loss();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace after
