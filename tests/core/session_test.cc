#include "core/session.h"

#include <gtest/gtest.h>

#include "graph/occlusion_converter.h"

namespace after {
namespace {

Dataset SmallDataset() {
  DatasetConfig config;
  config.num_users = 12;
  config.num_steps = 9;
  config.num_sessions = 2;
  config.seed = 31;
  return GenerateTimikLike(config);
}

TEST(SessionTest, VisitsEveryStepInOrder) {
  const Dataset dataset = SmallDataset();
  int expected_t = 0;
  ForEachSessionStep(dataset, 0, 3, 0.5, [&](const StepContext& context) {
    EXPECT_EQ(context.t, expected_t);
    ++expected_t;
  });
  EXPECT_EQ(expected_t, 9);
}

TEST(SessionTest, ContextFullyPopulated) {
  const Dataset dataset = SmallDataset();
  ForEachSessionStep(dataset, 1, 5, 0.7, [&](const StepContext& context) {
    EXPECT_EQ(context.target, 5);
    EXPECT_DOUBLE_EQ(context.beta, 0.7);
    ASSERT_NE(context.positions, nullptr);
    ASSERT_NE(context.occlusion, nullptr);
    ASSERT_NE(context.interfaces, nullptr);
    ASSERT_NE(context.preference, nullptr);
    ASSERT_NE(context.social_presence, nullptr);
    EXPECT_EQ(static_cast<int>(context.positions->size()), 12);
    EXPECT_EQ(context.occlusion->num_nodes(), 12);
    EXPECT_EQ(context.preference, &dataset.preference);
    EXPECT_DOUBLE_EQ(context.body_radius,
                     dataset.sessions[1].body_radius());
  });
}

TEST(SessionTest, OcclusionGraphMatchesConverter) {
  const Dataset dataset = SmallDataset();
  ForEachSessionStep(dataset, 0, 2, 0.5, [&](const StepContext& context) {
    const OcclusionGraph expected = BuildOcclusionGraph(
        *context.positions, 2, context.body_radius);
    EXPECT_EQ(context.occlusion->num_edges(), expected.num_edges());
  });
}

TEST(SessionTest, PositionsTrackTrajectory) {
  const Dataset dataset = SmallDataset();
  ForEachSessionStep(dataset, 0, 0, 0.5, [&](const StepContext& context) {
    const auto& expected = dataset.sessions[0].PositionsAt(context.t);
    EXPECT_EQ(context.positions, &expected);
  });
}

}  // namespace
}  // namespace after
