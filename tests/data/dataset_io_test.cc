#include "data/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace after {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("after_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Dataset MakeDataset() {
  DatasetConfig config;
  config.num_users = 12;
  config.num_steps = 7;
  config.num_sessions = 2;
  config.room_side = 6.0;
  config.seed = 81;
  return GenerateTimikLike(config);
}

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  const Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()));

  Dataset loaded;
  ASSERT_TRUE(LoadDataset(dir_.string(), &loaded));

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.num_users(), original.num_users());
  EXPECT_TRUE(loaded.preference.AllClose(original.preference));
  EXPECT_TRUE(loaded.social_presence.AllClose(original.social_presence));
  EXPECT_EQ(loaded.social.num_edges(), original.social.num_edges());
  for (int u = 0; u < original.num_users(); ++u)
    for (int v = 0; v < original.num_users(); ++v)
      EXPECT_DOUBLE_EQ(loaded.social.EdgeWeight(u, v),
                       original.social.EdgeWeight(u, v));

  ASSERT_EQ(loaded.sessions.size(), original.sessions.size());
  for (size_t s = 0; s < original.sessions.size(); ++s) {
    const XrWorld& a = original.sessions[s];
    const XrWorld& b = loaded.sessions[s];
    ASSERT_EQ(b.num_users(), a.num_users());
    ASSERT_EQ(b.num_steps(), a.num_steps());
    EXPECT_DOUBLE_EQ(b.body_radius(), a.body_radius());
    for (int u = 0; u < a.num_users(); ++u)
      EXPECT_EQ(b.interface_of(u), a.interface_of(u));
    for (int t = 0; t < a.num_steps(); ++t)
      for (int u = 0; u < a.num_users(); ++u) {
        EXPECT_DOUBLE_EQ(b.PositionsAt(t)[u].x, a.PositionsAt(t)[u].x);
        EXPECT_DOUBLE_EQ(b.PositionsAt(t)[u].y, a.PositionsAt(t)[u].y);
      }
  }
}

TEST_F(DatasetIoTest, LoadMissingDirectoryFails) {
  Dataset dataset;
  EXPECT_FALSE(LoadDataset((dir_ / "nope").string(), &dataset));
}

TEST_F(DatasetIoTest, LoadCorruptMetaFails) {
  const Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()));
  std::FILE* f = std::fopen((dir_ / "meta.txt").string().c_str(), "w");
  std::fputs("garbage", f);
  std::fclose(f);
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(dir_.string(), &dataset));
}

TEST_F(DatasetIoTest, LoadTruncatedMatrixFails) {
  const Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()));
  std::FILE* f = std::fopen((dir_ / "preference.txt").string().c_str(), "w");
  std::fputs("12 12\n0.5 0.5\n", f);  // far too few entries
  std::fclose(f);
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(dir_.string(), &dataset));
}

// Rewrites one 1-based line of `path` through `edit`.
void EditLine(const std::filesystem::path& path, int line_number,
              const std::function<std::string(const std::string&)>& edit) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(static_cast<int>(lines.size()), line_number);
  lines[line_number - 1] = edit(lines[line_number - 1]);
  std::ofstream out(path);
  for (const auto& line : lines) out << line << "\n";
}

TEST_F(DatasetIoTest, CheckedRoundTripSucceeds) {
  const Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDatasetChecked(original, dir_.string()).ok());
  const Result<Dataset> loaded = LoadDatasetChecked(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_users(), original.num_users());
  EXPECT_TRUE(loaded.value().preference.AllClose(original.preference));
}

TEST_F(DatasetIoTest, InconsistentRowLengthNamesFileAndLine) {
  ASSERT_TRUE(SaveDatasetChecked(MakeDataset(), dir_.string()).ok());
  // Line 1 is the "rows cols" header; line 3 is the second matrix row.
  EditLine(dir_ / "preference.txt", 3,
           [](const std::string& line) { return line + " 0.25"; });
  const Result<Dataset> loaded = LoadDatasetChecked(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
  EXPECT_NE(loaded.status().message().find("preference.txt"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(DatasetIoTest, NonFiniteEntryNamesFileAndLine) {
  ASSERT_TRUE(SaveDatasetChecked(MakeDataset(), dir_.string()).ok());
  EditLine(dir_ / "presence.txt", 2, [](const std::string& line) {
    return "nan" + line.substr(line.find(' '));
  });
  const Result<Dataset> loaded = LoadDatasetChecked(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
  EXPECT_NE(loaded.status().message().find("presence.txt"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(DatasetIoTest, MissingFileIsNamedInTheDiagnostic) {
  ASSERT_TRUE(SaveDatasetChecked(MakeDataset(), dir_.string()).ok());
  std::filesystem::remove(dir_ / "presence.txt");
  const Result<Dataset> loaded = LoadDatasetChecked(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("presence.txt"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(DatasetIoTest, OutOfRangeEdgeEndpointIsRejected) {
  ASSERT_TRUE(SaveDatasetChecked(MakeDataset(), dir_.string()).ok());
  EditLine(dir_ / "social.txt", 2, [](const std::string& line) {
    return "999999999" + line.substr(line.find(' '));
  });
  const Result<Dataset> loaded = LoadDatasetChecked(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
  EXPECT_NE(loaded.status().message().find("social.txt"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(DatasetIoTest, ValidateDatasetCatchesInMemoryCorruption) {
  Dataset dataset = MakeDataset();
  EXPECT_TRUE(ValidateDataset(dataset).ok());
  dataset.preference.At(0, 1) = std::numeric_limits<double>::quiet_NaN();
  const Status status = ValidateDataset(dataset);
  EXPECT_EQ(status.code(), StatusCode::kInvalidData);
}

TEST_F(DatasetIoTest, XrWorldFromRecordedRoundTrip) {
  std::vector<Interface> interfaces = {Interface::kMR, Interface::kVR};
  std::vector<std::vector<Vec2>> trajectory = {
      {{0, 0}, {1, 1}},
      {{0.5, 0}, {1, 1.5}},
  };
  const XrWorld world =
      XrWorld::FromRecorded(interfaces, trajectory, 0.3);
  EXPECT_EQ(world.num_users(), 2);
  EXPECT_EQ(world.num_steps(), 2);
  EXPECT_EQ(world.interface_of(0), Interface::kMR);
  EXPECT_DOUBLE_EQ(world.PositionsAt(1)[0].x, 0.5);
  EXPECT_DOUBLE_EQ(world.body_radius(), 0.3);
}

}  // namespace
}  // namespace after
