#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/preference_model.h"
#include "graph/generators.h"

namespace after {
namespace {

DatasetConfig SmallConfig() {
  DatasetConfig config;
  config.num_users = 40;
  config.num_steps = 20;
  config.num_sessions = 2;
  config.room_side = 8.0;
  config.seed = 3;
  return config;
}

void CheckDatasetInvariants(const Dataset& dataset, int n, int steps,
                            int sessions) {
  EXPECT_EQ(dataset.num_users(), n);
  EXPECT_EQ(static_cast<int>(dataset.sessions.size()), sessions);
  for (const auto& world : dataset.sessions) {
    EXPECT_EQ(world.num_users(), n);
    EXPECT_EQ(world.num_steps(), steps);
  }
  EXPECT_EQ(dataset.preference.rows(), n);
  EXPECT_EQ(dataset.preference.cols(), n);
  EXPECT_EQ(dataset.social_presence.rows(), n);
  EXPECT_EQ(dataset.social_presence.cols(), n);
  for (int v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(dataset.preference.At(v, v), 0.0);
    EXPECT_DOUBLE_EQ(dataset.social_presence.At(v, v), 0.0);
    for (int w = 0; w < n; ++w) {
      EXPECT_GE(dataset.preference.At(v, w), 0.0);
      EXPECT_LE(dataset.preference.At(v, w), 1.0);
      EXPECT_GE(dataset.social_presence.At(v, w), 0.0);
      EXPECT_LE(dataset.social_presence.At(v, w), 1.0);
    }
  }
}

TEST(DatasetTest, TimikLikeInvariants) {
  const Dataset d = GenerateTimikLike(SmallConfig());
  EXPECT_EQ(d.name, "timik");
  CheckDatasetInvariants(d, 40, 20, 2);
}

TEST(DatasetTest, SmmLikeInvariants) {
  const Dataset d = GenerateSmmLike(SmallConfig());
  EXPECT_EQ(d.name, "smm");
  CheckDatasetInvariants(d, 40, 20, 2);
}

TEST(DatasetTest, HubsLikeInvariants) {
  const Dataset d = GenerateHubsLike(SmallConfig());
  EXPECT_EQ(d.name, "hub");
  CheckDatasetInvariants(d, 40, 20, 2);
}

TEST(DatasetTest, HubsDefaultConfigIsSmall) {
  const DatasetConfig config = HubsDefaultConfig();
  EXPECT_LE(config.num_users, 50);
  EXPECT_LT(config.room_side, 10.0);
}

TEST(DatasetTest, FriendsHaveHigherPresenceThanStrangers) {
  const Dataset d = GenerateTimikLike(SmallConfig());
  double friend_total = 0.0;
  int friend_count = 0;
  double stranger_total = 0.0;
  int stranger_count = 0;
  for (int v = 0; v < d.num_users(); ++v) {
    for (int w = 0; w < d.num_users(); ++w) {
      if (v == w) continue;
      if (d.social.HasEdge(v, w)) {
        friend_total += d.social_presence.At(v, w);
        ++friend_count;
      } else {
        stranger_total += d.social_presence.At(v, w);
        ++stranger_count;
      }
    }
  }
  ASSERT_GT(friend_count, 0);
  ASSERT_GT(stranger_count, 0);
  EXPECT_GT(friend_total / friend_count, 2.0 * stranger_total / stranger_count);
}

TEST(DatasetTest, DeterministicForSeed) {
  const Dataset a = GenerateSmmLike(SmallConfig());
  const Dataset b = GenerateSmmLike(SmallConfig());
  EXPECT_TRUE(a.preference.AllClose(b.preference));
  EXPECT_TRUE(a.social_presence.AllClose(b.social_presence));
  EXPECT_EQ(a.social.num_edges(), b.social.num_edges());
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  DatasetConfig config_a = SmallConfig();
  DatasetConfig config_b = SmallConfig();
  config_b.seed = 999;
  const Dataset a = GenerateTimikLike(config_a);
  const Dataset b = GenerateTimikLike(config_b);
  EXPECT_FALSE(a.preference.AllClose(b.preference, 1e-6));
}

TEST(DatasetTest, SessionsAreDistinctRollouts) {
  const Dataset d = GenerateTimikLike(SmallConfig());
  ASSERT_EQ(d.sessions.size(), 2u);
  double diff = 0.0;
  for (int u = 0; u < d.num_users(); ++u)
    diff += Distance(d.sessions[0].PositionsAt(0)[u],
                     d.sessions[1].PositionsAt(0)[u]);
  EXPECT_GT(diff, 1.0);
}

TEST(DatasetTest, VrFractionPropagates) {
  DatasetConfig config = SmallConfig();
  config.vr_fraction = 0.25;
  const Dataset d = GenerateSmmLike(config);
  int vr = 0;
  for (int u = 0; u < d.num_users(); ++u)
    if (d.sessions[0].interface_of(u) == Interface::kVR) ++vr;
  EXPECT_EQ(vr, 10);
}

TEST(PreferenceModelTest, OutputsInUnitInterval) {
  Rng rng(5);
  PreferenceModelOptions options;
  options.latent_dim = 6;
  const PreferenceModel model = BuildPreferenceModel(30, options, rng);
  EXPECT_EQ(model.factors.rows(), 30);
  EXPECT_EQ(model.factors.cols(), 6);
  for (int v = 0; v < 30; ++v)
    for (int w = 0; w < 30; ++w) {
      EXPECT_GE(model.preference.At(v, w), 0.0);
      EXPECT_LE(model.preference.At(v, w), 1.0);
    }
}

TEST(PreferenceModelTest, CelebritiesAreBroadlyAttractive) {
  Rng rng(7);
  PreferenceModelOptions options;
  options.celebrity_fraction = 0.1;
  options.celebrity_boost = 3.0;
  const PreferenceModel model = BuildPreferenceModel(50, options, rng);
  // Column means: the boosted users must include the global maxima.
  std::vector<double> column_mean(50, 0.0);
  for (int w = 0; w < 50; ++w) {
    for (int v = 0; v < 50; ++v)
      if (v != w) column_mean[w] += model.preference.At(v, w);
    column_mean[w] /= 49.0;
  }
  std::sort(column_mean.begin(), column_mean.end());
  // Top 5 (celebrities) clearly separated from the median user.
  EXPECT_GT(column_mean[49], column_mean[25] + 0.2);
}

TEST(PreferenceModelTest, CommunityBoostRaisesWithinPreference) {
  Rng rng(9);
  std::vector<int> community(40);
  for (int i = 0; i < 40; ++i) community[i] = i % 4;
  PreferenceModelOptions options;
  options.community = &community;
  options.community_boost = 2.0;
  const PreferenceModel model = BuildPreferenceModel(40, options, rng);
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (int v = 0; v < 40; ++v)
    for (int w = 0; w < 40; ++w) {
      if (v == w) continue;
      if (community[v] == community[w]) {
        within += model.preference.At(v, w);
        ++within_count;
      } else {
        across += model.preference.At(v, w);
        ++across_count;
      }
    }
  EXPECT_GT(within / within_count, across / across_count + 0.15);
}

TEST(PreferenceModelTest, IdiosyncraticNoiseDecorrelatesRows) {
  Rng rng_a(11), rng_b(11);
  PreferenceModelOptions smooth;
  smooth.factor_weight = 1.0;
  PreferenceModelOptions noisy = smooth;
  noisy.idiosyncratic_stddev = 2.0;
  const PreferenceModel a = BuildPreferenceModel(30, smooth, rng_a);
  const PreferenceModel b = BuildPreferenceModel(30, noisy, rng_b);
  // With heavy idiosyncratic noise the preference matrix must differ
  // substantially from the smooth factor-only version.
  EXPECT_FALSE(a.preference.AllClose(b.preference, 0.05));
}

TEST(PreferenceModelTest, SocialPresenceFriendsOnlyScaling) {
  Rng rng(13);
  SocialGraph g(5);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 0.5);
  const Matrix s = SocialPresenceFromGraph(g, 0.8, 1.0, 0.0, rng);
  EXPECT_GE(s.At(0, 1), 0.8);
  EXPECT_LE(s.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.At(0, 1), s.At(1, 0));
  // Tie strength 0.5 halves the base.
  EXPECT_LE(s.At(2, 3), 0.5);
  EXPECT_DOUBLE_EQ(s.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(s.At(4, 4), 0.0);
}

}  // namespace
}  // namespace after
