#include "eval/ascii_view.h"

#include <gtest/gtest.h>

namespace after {
namespace {

AsciiViewOptions Options(int width = 72) {
  AsciiViewOptions options;
  options.width = width;
  return options;
}

TEST(AsciiViewTest, EmptySceneAllDots) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}};
  const std::string strip =
      RenderViewportStrip(positions, 0, {false, false}, Options());
  EXPECT_EQ(strip, std::string(72, '.'));
}

TEST(AsciiViewTest, VisibleUserAppearsUppercase) {
  // User 1 to the east of target 0: letter 'B' near the strip's middle
  // (theta = 0 maps to the center column).
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}};
  const std::string strip =
      RenderViewportStrip(positions, 0, {false, true}, Options());
  EXPECT_NE(strip.find('B'), std::string::npos);
  EXPECT_EQ(strip.find('b'), std::string::npos);
  // The middle column (theta ~ 0) shows the user.
  EXPECT_EQ(strip[36], 'B');
}

TEST(AsciiViewTest, HiddenUserLowercase) {
  // User 2 behind user 1: occupied buckets show the nearer user; user 2
  // peeks out only where its (narrower) arc... it is fully covered, so
  // its letter never appears; verify the strip shows 'B' and never 'C'.
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {4, 0}};
  const std::string strip =
      RenderViewportStrip(positions, 0, {false, true, true}, Options(144));
  EXPECT_NE(strip.find('B'), std::string::npos);
  EXPECT_EQ(strip.find('C'), std::string::npos);
}

TEST(AsciiViewTest, PartiallyHiddenUserShowsBothCases) {
  // User 2 slightly offset behind user 1: part of its arc is its own.
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {4, 0.8}};
  const std::string strip =
      RenderViewportStrip(positions, 0, {false, true, true}, Options(288));
  EXPECT_NE(strip.find('B'), std::string::npos);
  // User 2's exposed part: visible -> uppercase 'C' appears where it is
  // the nearest rendered user. (It is NOT occluded per the visibility
  // rule if arcs do not overlap; either way some 'C' or 'c' appears.)
  const bool c_present = strip.find('C') != std::string::npos ||
                         strip.find('c') != std::string::npos;
  EXPECT_TRUE(c_present);
}

TEST(AsciiViewTest, WestUserLandsAtStripEdges) {
  const std::vector<Vec2> positions = {{0, 0}, {-2, 0}};
  const std::string strip =
      RenderViewportStrip(positions, 0, {false, true}, Options());
  // theta = pi wraps to the strip edges.
  EXPECT_TRUE(strip.front() == 'B' || strip.back() == 'B');
}

TEST(AsciiViewTest, LegendListsVisibleUsers) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {0, 3}};
  const std::vector<std::string> labels = {"", "friend", ""};
  const std::string view = RenderViewportWithLegend(
      positions, 0, {false, true, true}, labels, Options());
  EXPECT_NE(view.find("B=1(friend)"), std::string::npos);
  EXPECT_NE(view.find("C=2"), std::string::npos);
}

TEST(AsciiViewTest, LegendHandlesEmptyView) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}};
  const std::vector<std::string> labels = {"", ""};
  const std::string view = RenderViewportWithLegend(
      positions, 0, {false, false}, labels, Options());
  EXPECT_NE(view.find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace after
