#include "eval/stats.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_NEAR(Variance(values), 4.571428571, 1e-8);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(StatsTest, DegenerateAggregationIsNanSafe) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // Empty / all-poisoned samples aggregate to 0, never NaN or an abort.
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({kNan, kNan}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({kNan, kNan, kNan}), 0.0);
  // Non-finite entries are ignored rather than propagated.
  EXPECT_DOUBLE_EQ(Mean({1.0, kNan, 3.0}), 2.0);
  EXPECT_TRUE(std::isfinite(Variance({1.0, kNan, 3.0, 5.0})));
}

TEST(StatsTest, MismatchedPairingsReturnSafeDefaults) {
  // A method that dropped targets yields unpaired vectors; the tests
  // must degrade to their neutral defaults instead of aborting.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0};
  const TTestResult t = PairedTTest(a, b);
  EXPECT_DOUBLE_EQ(t.t_statistic, 0.0);
  EXPECT_DOUBLE_EQ(t.p_value, 1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(a, b), 0.0);
}

TEST(StatsTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.85), 0.85, 1e-10);
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 1.0, 0.5), 0.25, 1e-10);
  // I_x(1, 2) = 1 - (1-x)^2.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 2.0, 0.5), 0.75, 1e-10);
  // Boundaries.
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3.0, 4.0, 1.0), 1.0);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 3.5, 0.4),
              1.0 - RegularizedIncompleteBeta(3.5, 2.5, 0.6), 1e-10);
}

TEST(StatsTest, StudentTCdfKnownValues) {
  // t = 0 -> 0.5 for any df.
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // df = 1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-9);
  // Large df approximates the normal: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-1.5, 7.0), 1.0 - StudentTCdf(1.5, 7.0), 1e-12);
}

TEST(StatsTest, WelchTTestIdenticalSamples) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const TTestResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.t_statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(StatsTest, WelchTTestSeparatedSamples) {
  std::vector<double> a, b;
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Normal(0.0, 1.0));
    b.push_back(rng.Normal(3.0, 1.0));
  }
  const TTestResult r = WelchTTest(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.t_statistic, 0.0);  // mean(a) < mean(b)
}

TEST(StatsTest, WelchTTestMatchesReference) {
  // Hand-computed: a = [1..5]: mean 3, var/n = 0.5; b = [2,3,4,5,7]:
  // mean 4.2, var/n = 0.74. t = -1.2 / sqrt(1.24) = -1.07763;
  // Welch-Satterthwaite df = 1.24^2 / (0.5^2/4 + 0.74^2/4) = 7.711.
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 3, 4, 5, 7};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_NEAR(r.t_statistic, -1.07763, 1e-4);
  EXPECT_NEAR(r.degrees_of_freedom, 7.711, 1e-2);
  EXPECT_NEAR(r.p_value, 0.3138, 2e-3);
}

TEST(StatsTest, PairedTTestDetectsConsistentShift) {
  std::vector<double> a, b;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const double base = rng.Normal(0.0, 5.0);  // large subject variance
    a.push_back(base + 1.0);                   // consistent +1 shift
    b.push_back(base);
  }
  // Welch would drown in subject variance; paired must detect it.
  EXPECT_LT(PairedTTest(a, b).p_value, 1e-6);
  EXPECT_GT(WelchTTest(a, b).p_value, 0.05);
}

TEST(StatsTest, PairedTTestIdentical) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_NEAR(PairedTTest(a, a).p_value, 1.0, 1e-9);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonKnownValue) {
  // Hand-computed: sxy = 5.5, sxx = 5, syy = 8.75 ->
  // r = 5.5 / sqrt(43.75) = 0.8315218...
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 2, 5};
  EXPECT_NEAR(PearsonCorrelation(x, y), 5.5 / std::sqrt(43.75), 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(StatsTest, SpearmanMonotoneNonlinearIsOne) {
  // Spearman sees through monotone nonlinearity, Pearson does not.
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.5 * i));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 0.95);
}

TEST(StatsTest, SpearmanHandlesTies) {
  // Ranks of x with the tie averaged: (1, 2.5, 2.5, 4); Pearson of the
  // rank vectors is 4.5 / sqrt(22.5) = 0.9486832...
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 4.5 / std::sqrt(22.5), 1e-12);
}

TEST(StatsTest, SpearmanAntitone) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {9, 7, 5, 3, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(StatsTest, UncorrelatedNoiseNearZero) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 3000; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 0.0, 0.05);
}

}  // namespace
}  // namespace after
