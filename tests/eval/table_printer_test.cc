#include "eval/table_printer.h"

#include <gtest/gtest.h>

namespace after {
namespace {

EvalResult MakeResult(const std::string& method, double after, double occ,
                      double ms) {
  EvalResult r;
  r.method = method;
  r.after_utility = after;
  r.preference_utility = after * 0.9;
  r.social_presence_utility = after * 1.1;
  r.view_occlusion_rate = occ;
  r.running_time_ms = ms;
  return r;
}

TEST(TablePrinterTest, RendersTitleAndMethods) {
  TablePrinter table("My Table");
  table.AddResult(MakeResult("POSHGNN", 100.0, 0.4, 5.0));
  table.AddResult(MakeResult("Random", 50.0, 0.8, 0.01));
  const std::string out = table.Render();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("POSHGNN"), std::string::npos);
  EXPECT_NE(out.find("Random"), std::string::npos);
  EXPECT_NE(out.find("AFTER Utility"), std::string::npos);
  EXPECT_NE(out.find("View Occlusion"), std::string::npos);
  EXPECT_NE(out.find("Running Time"), std::string::npos);
}

TEST(TablePrinterTest, MarksBestPerRow) {
  TablePrinter table("T");
  table.AddResult(MakeResult("A", 100.0, 0.4, 5.0));
  table.AddResult(MakeResult("B", 50.0, 0.2, 1.0));
  const std::string out = table.Render();
  // Higher-is-better AFTER utility: A's 100.0 starred.
  EXPECT_NE(out.find("100.0*"), std::string::npos);
  // Lower-is-better occlusion: B's 20.0% starred.
  EXPECT_NE(out.find("20.0*"), std::string::npos);
  // Lower-is-better runtime: B's 1.000 starred.
  EXPECT_NE(out.find("1.000*"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableJustTitle) {
  TablePrinter table("Empty");
  const std::string out = table.Render();
  EXPECT_NE(out.find("Empty"), std::string::npos);
}

TEST(GenericTableTest, RendersCells) {
  const std::string out = RenderGenericTable(
      "G", {"row1", "row2"}, {"c1", "c2"},
      {{1.5, 2.5}, {3.25, 4.0}}, 2);
  EXPECT_NE(out.find("G"), std::string::npos);
  EXPECT_NE(out.find("row1"), std::string::npos);
  EXPECT_NE(out.find("c2"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
}

}  // namespace
}  // namespace after
