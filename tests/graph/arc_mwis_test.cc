#include "graph/arc_mwis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

TEST(IntervalMwisTest, EmptyInput) {
  const MwisResult r = IntervalMwis({}, {}, {});
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
}

TEST(IntervalMwisTest, SingleInterval) {
  const MwisResult r = IntervalMwis({1.0}, {2.0}, {3.0});
  EXPECT_DOUBLE_EQ(r.weight, 3.0);
  EXPECT_TRUE(r.selected[0]);
}

TEST(IntervalMwisTest, TouchingIntervalsConflict) {
  // [0,1] and [1,2] touch -> only one can be chosen.
  const MwisResult r = IntervalMwis({0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.weight, 3.0);
  EXPECT_FALSE(r.selected[0]);
  EXPECT_TRUE(r.selected[1]);
}

TEST(IntervalMwisTest, DisjointAllSelected) {
  const MwisResult r =
      IntervalMwis({0.0, 2.0, 4.0}, {1.0, 3.0, 5.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.weight, 3.0);
}

TEST(IntervalMwisTest, ClassicSchedulingInstance) {
  // Overlapping chain where skipping the middle wins.
  const MwisResult r = IntervalMwis({0.0, 0.5, 2.0}, {1.0, 3.0, 4.0},
                                    {2.0, 3.0, 2.0});
  // {0, 2} = 4 beats {1} = 3.
  EXPECT_DOUBLE_EQ(r.weight, 4.0);
  EXPECT_TRUE(r.selected[0]);
  EXPECT_FALSE(r.selected[1]);
  EXPECT_TRUE(r.selected[2]);
}

TEST(IntervalMwisTest, NonPositiveWeightsIgnored) {
  const MwisResult r = IntervalMwis({0.0, 5.0}, {1.0, 6.0}, {-1.0, 0.0});
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
  EXPECT_FALSE(r.selected[0]);
  EXPECT_FALSE(r.selected[1]);
}

ViewArc MakeArc(double center, double half_width, double distance = 1.0) {
  ViewArc arc;
  arc.center = center;
  arc.half_width = half_width;
  arc.distance = distance;
  arc.valid = true;
  return arc;
}

TEST(CircularArcMwisTest, InvalidArcsNeverSelected) {
  std::vector<ViewArc> arcs(2);
  arcs[0] = MakeArc(0.0, 0.3);  // arcs[1] stays invalid (the target)
  const MwisResult r = CircularArcMwis(arcs, {1.0, 100.0});
  EXPECT_TRUE(r.selected[0]);
  EXPECT_FALSE(r.selected[1]);
  EXPECT_DOUBLE_EQ(r.weight, 1.0);
}

TEST(CircularArcMwisTest, FullCircleArcIsSingleton) {
  std::vector<ViewArc> arcs = {MakeArc(0.0, M_PI), MakeArc(1.0, 0.2),
                               MakeArc(-2.0, 0.2)};
  // The two small arcs together (1.5) beat the full-circle arc (1.2).
  const MwisResult r = CircularArcMwis(arcs, {1.2, 0.7, 0.8});
  EXPECT_FALSE(r.selected[0]);
  EXPECT_TRUE(r.selected[1]);
  EXPECT_TRUE(r.selected[2]);
  // ...but a heavy full-circle arc wins alone.
  const MwisResult r2 = CircularArcMwis(arcs, {2.0, 0.7, 0.8});
  EXPECT_TRUE(r2.selected[0]);
  EXPECT_FALSE(r2.selected[1]);
  EXPECT_DOUBLE_EQ(r2.weight, 2.0);
}

TEST(CircularArcMwisTest, WrapAroundArcsHandled) {
  // Three arcs around the -pi/+pi seam plus one opposite.
  std::vector<ViewArc> arcs = {MakeArc(M_PI - 0.05, 0.2),
                               MakeArc(-M_PI + 0.05, 0.2),
                               MakeArc(0.0, 0.2)};
  // Arcs 0 and 1 overlap across the seam; arc 2 is free.
  const MwisResult r = CircularArcMwis(arcs, {1.0, 1.5, 1.0});
  EXPECT_DOUBLE_EQ(r.weight, 2.5);
  EXPECT_FALSE(r.selected[0]);
  EXPECT_TRUE(r.selected[1]);
  EXPECT_TRUE(r.selected[2]);
}

/// Property: on random XR scenes the polynomial circular-arc solver must
/// agree with the exponential branch-and-bound on the converted
/// occlusion graph.
class CircularArcAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CircularArcAgreementTest, MatchesExactBranchAndBound) {
  const int num_users = GetParam();
  Rng rng(1000 + num_users);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Vec2> positions;
    for (int i = 0; i < num_users; ++i)
      positions.emplace_back(rng.Uniform(0, 6), rng.Uniform(0, 6));
    const int target = 0;
    const auto arcs = ComputeViewArcs(positions, target, 0.25);
    const OcclusionGraph graph =
        BuildOcclusionGraph(positions, target, 0.25);

    std::vector<double> weights(num_users);
    for (int i = 0; i < num_users; ++i) weights[i] = rng.Uniform(0.0, 1.0);
    weights[target] = 0.0;

    const MwisResult exact = ExactMwis(graph, weights);
    const MwisResult arc = CircularArcMwis(arcs, weights);
    EXPECT_EQ(graph.CountConflicts(arc.selected), 0)
        << "trial " << trial;
    EXPECT_NEAR(arc.weight, exact.weight, 1e-9)
        << "n=" << num_users << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(SceneSizes, CircularArcAgreementTest,
                         ::testing::Values(6, 9, 12, 15));

TEST(CircularArcMwisTest, LargeSceneDominatesHeuristics) {
  Rng rng(77);
  std::vector<Vec2> positions;
  for (int i = 0; i < 120; ++i)
    positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  const auto arcs = ComputeViewArcs(positions, 0, 0.25);
  const OcclusionGraph graph = BuildOcclusionGraph(positions, 0, 0.25);
  std::vector<double> weights(120);
  for (auto& w : weights) w = rng.Uniform(0.0, 1.0);
  weights[0] = 0.0;

  const MwisResult oracle = CircularArcMwis(arcs, weights);
  EXPECT_EQ(graph.CountConflicts(oracle.selected), 0);

  const MwisResult greedy = GreedyMwis(graph, weights);
  Rng search_rng(5);
  const MwisResult local = LocalSearchMwis(graph, weights, 300, search_rng);
  EXPECT_GE(oracle.weight, greedy.weight - 1e-9);
  EXPECT_GE(oracle.weight, local.weight - 1e-9);
}

}  // namespace
}  // namespace after
