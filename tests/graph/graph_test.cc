#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/occlusion_graph.h"
#include "graph/social_graph.h"

namespace after {
namespace {

TEST(SocialGraphTest, EmptyGraph) {
  SocialGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(0), 0);
}

TEST(SocialGraphTest, AddEdgeSymmetric) {
  SocialGraph g(4);
  g.AddEdge(0, 2, 0.5);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 0), 0.5);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(SocialGraphTest, DuplicateEdgeUpdatesWeight) {
  SocialGraph g(3);
  g.AddEdge(0, 1, 0.3);
  g.AddEdge(1, 0, 0.9);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.9);
}

TEST(SocialGraphTest, MissingEdgeHasZeroWeight) {
  SocialGraph g(3);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.0);
}

TEST(SocialGraphTest, NeighborsAndDegree) {
  SocialGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Neighbors(0).size(), 3u);
}

TEST(OcclusionGraphTest, AddEdgeDeduplicates) {
  OcclusionGraph g(4);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(OcclusionGraphTest, AdjacencyMatrixSymmetricBinary) {
  OcclusionGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const Matrix a = g.ToAdjacencyMatrix();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(a.At(r, r), 0.0);
    for (int c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(a.At(r, c), a.At(c, r));
      EXPECT_TRUE(a.At(r, c) == 0.0 || a.At(r, c) == 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(a.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.At(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 2), 0.0);
}

TEST(OcclusionGraphTest, CountConflicts) {
  OcclusionGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  std::vector<bool> none = {false, false, false, false};
  std::vector<bool> independent = {true, false, true, true};
  std::vector<bool> conflicting = {true, true, true, false};
  EXPECT_EQ(g.CountConflicts(none), 0);
  EXPECT_EQ(g.CountConflicts(independent), 0);
  EXPECT_EQ(g.CountConflicts(conflicting), 2);
}

TEST(DynamicOcclusionGraphTest, FixedConstruction) {
  DynamicOcclusionGraph dog(5, 3);
  EXPECT_EQ(dog.num_nodes(), 5);
  EXPECT_EQ(dog.num_steps(), 3);
  dog.At(1).AddEdge(0, 1);
  EXPECT_TRUE(dog.At(1).HasEdge(0, 1));
  EXPECT_FALSE(dog.At(0).HasEdge(0, 1));
}

TEST(DynamicOcclusionGraphTest, AppendChecksNodeCount) {
  DynamicOcclusionGraph dog;
  dog.Append(OcclusionGraph(4));
  EXPECT_EQ(dog.num_nodes(), 4);
  EXPECT_EQ(dog.num_steps(), 1);
  dog.Append(OcclusionGraph(4));
  EXPECT_EQ(dog.num_steps(), 2);
}

TEST(GeneratorsTest, BarabasiAlbertBasicInvariants) {
  Rng rng(1);
  const SocialGraph g = BarabasiAlbert(100, 3, rng);
  EXPECT_EQ(g.num_nodes(), 100);
  // Every non-seed node attaches with ~3 edges.
  EXPECT_GE(g.num_edges(), 3 * (100 - 4));
  for (int u = 4; u < 100; ++u) EXPECT_GE(g.Degree(u), 1);
}

TEST(GeneratorsTest, BarabasiAlbertHeavyTail) {
  Rng rng(2);
  const SocialGraph g = BarabasiAlbert(300, 2, rng);
  int max_degree = 0;
  double total_degree = 0;
  for (int u = 0; u < 300; ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
    total_degree += g.Degree(u);
  }
  const double avg_degree = total_degree / 300.0;
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(max_degree, 4 * avg_degree);
}

TEST(GeneratorsTest, SbmCommunityStructure) {
  Rng rng(3);
  std::vector<int> blocks;
  const SocialGraph g =
      StochasticBlockModel(200, 4, 0.3, 0.01, rng, &blocks);
  ASSERT_EQ(blocks.size(), 200u);

  int within = 0, across = 0;
  for (int u = 0; u < 200; ++u) {
    for (const auto& nbr : g.Neighbors(u)) {
      if (nbr.node < u) continue;
      if (blocks[u] == blocks[nbr.node]) {
        ++within;
      } else {
        ++across;
      }
    }
  }
  // p_in = 30x p_out, but across-pairs are ~3x more numerous: within
  // edges should still dominate by a wide margin.
  EXPECT_GT(within, 3 * across);
}

TEST(GeneratorsTest, SbmBlockIdsInRange) {
  Rng rng(4);
  std::vector<int> blocks;
  StochasticBlockModel(50, 5, 0.2, 0.05, rng, &blocks);
  for (int b : blocks) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 5);
  }
}

TEST(GeneratorsTest, WattsStrogatzDegrees) {
  Rng rng(5);
  const SocialGraph g = WattsStrogatz(60, 3, 0.0, rng);
  // With no rewiring, a ring lattice gives everyone degree exactly 2k.
  for (int u = 0; u < 60; ++u) EXPECT_EQ(g.Degree(u), 6);
}

TEST(GeneratorsTest, WattsStrogatzRewiringKeepsEdgeBudget) {
  Rng rng(6);
  const SocialGraph g = WattsStrogatz(80, 2, 0.3, rng);
  EXPECT_EQ(g.num_nodes(), 80);
  // Rewiring can drop an edge only when the rewire target is rejected.
  EXPECT_GE(g.num_edges(), 80 * 2 - 20);
  EXPECT_LE(g.num_edges(), 80 * 2);
}

TEST(GeneratorsTest, DeterministicForSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  const SocialGraph a = BarabasiAlbert(50, 2, rng_a);
  const SocialGraph b = BarabasiAlbert(50, 2, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int u = 0; u < 50; ++u) EXPECT_EQ(a.Degree(u), b.Degree(u));
}

}  // namespace
}  // namespace after
