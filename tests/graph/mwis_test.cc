#include "graph/mwis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/gig.h"

namespace after {
namespace {

/// Brute-force MWIS over all 2^n subsets (n <= ~16).
MwisResult BruteForceMwis(const OcclusionGraph& graph,
                          const std::vector<double>& weights) {
  const int n = graph.num_nodes();
  MwisResult best;
  best.selected.assign(n, false);
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<bool> selected(n, false);
    double weight = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        selected[i] = true;
        weight += weights[i];
      }
    }
    if (graph.CountConflicts(selected) == 0 && weight > best.weight) {
      best.weight = weight;
      best.selected = selected;
    }
  }
  return best;
}

OcclusionGraph RandomGraph(int n, double edge_prob, Rng& rng) {
  OcclusionGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.Bernoulli(edge_prob)) g.AddEdge(i, j);
  return g;
}

TEST(MwisTest, EmptyGraphSelectsAllPositive) {
  OcclusionGraph g(4);
  const std::vector<double> weights = {1.0, 2.0, 0.5, 3.0};
  const MwisResult result = ExactMwis(g, weights);
  EXPECT_DOUBLE_EQ(result.weight, 6.5);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(result.selected[i]);
}

TEST(MwisTest, NegativeWeightsNeverSelected) {
  OcclusionGraph g(3);
  const std::vector<double> weights = {1.0, -2.0, 3.0};
  const MwisResult result = ExactMwis(g, weights);
  EXPECT_FALSE(result.selected[1]);
  EXPECT_DOUBLE_EQ(result.weight, 4.0);
}

TEST(MwisTest, TriangleChoosesHeaviest) {
  OcclusionGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const std::vector<double> weights = {1.0, 5.0, 3.0};
  const MwisResult result = ExactMwis(g, weights);
  EXPECT_DOUBLE_EQ(result.weight, 5.0);
  EXPECT_TRUE(result.selected[1]);
}

TEST(MwisTest, PathGraphAlternation) {
  // Path 0-1-2-3-4 with uniform weights: optimum picks {0, 2, 4}.
  OcclusionGraph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  const std::vector<double> weights(5, 1.0);
  const MwisResult result = ExactMwis(g, weights);
  EXPECT_DOUBLE_EQ(result.weight, 3.0);
  EXPECT_EQ(g.CountConflicts(result.selected), 0);
}

/// Property sweep: the branch-and-bound optimum must equal brute force on
/// random graphs of varying density.
class MwisExactnessTest : public ::testing::TestWithParam<double> {};

TEST_P(MwisExactnessTest, MatchesBruteForce) {
  const double density = GetParam();
  Rng rng(static_cast<uint64_t>(density * 1000) + 5);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 6 + rng.UniformInt(7);  // 6..12 nodes
    const OcclusionGraph g = RandomGraph(n, density, rng);
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.Uniform(0.0, 1.0);

    const MwisResult exact = ExactMwis(g, weights);
    const MwisResult brute = BruteForceMwis(g, weights);
    EXPECT_NEAR(exact.weight, brute.weight, 1e-9)
        << "n=" << n << " density=" << density << " trial=" << trial;
    EXPECT_EQ(g.CountConflicts(exact.selected), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, MwisExactnessTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8));

/// Property sweep: greedy and local search are feasible and never exceed
/// the exact optimum; local search dominates greedy.
class MwisHeuristicTest : public ::testing::TestWithParam<double> {};

TEST_P(MwisHeuristicTest, HeuristicsBoundedByExact) {
  const double density = GetParam();
  Rng rng(static_cast<uint64_t>(density * 997) + 11);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 8 + rng.UniformInt(6);
    const OcclusionGraph g = RandomGraph(n, density, rng);
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.Uniform(0.0, 1.0);

    const MwisResult exact = ExactMwis(g, weights);
    const MwisResult greedy = GreedyMwis(g, weights);
    Rng search_rng(trial);
    const MwisResult local = LocalSearchMwis(g, weights, 200, search_rng);

    EXPECT_EQ(g.CountConflicts(greedy.selected), 0);
    EXPECT_EQ(g.CountConflicts(local.selected), 0);
    EXPECT_LE(greedy.weight, exact.weight + 1e-9);
    EXPECT_LE(local.weight, exact.weight + 1e-9);
    EXPECT_GE(local.weight, greedy.weight - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, MwisHeuristicTest,
                         ::testing::Values(0.2, 0.5));

TEST(MwisTest, LocalSearchApproachesExactOnSmallGraphs) {
  Rng rng(31);
  int hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const OcclusionGraph g = RandomGraph(10, 0.4, rng);
    std::vector<double> weights(10);
    for (auto& w : weights) w = rng.Uniform(0.0, 1.0);
    const MwisResult exact = ExactMwis(g, weights);
    Rng search_rng(trial + 100);
    const MwisResult local = LocalSearchMwis(g, weights, 500, search_rng);
    if (local.weight >= exact.weight - 1e-9) ++hits;
  }
  EXPECT_GE(hits, 8);  // local search should almost always find optimum
}

TEST(MwisTest, SelectionWeightComputesAndChecks) {
  OcclusionGraph g(3);
  g.AddEdge(0, 1);
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  std::vector<bool> selected = {true, false, true};
  EXPECT_DOUBLE_EQ(SelectionWeight(g, weights, selected, true), 4.0);
}

TEST(GigTest, DisksIntersectGeometry) {
  EXPECT_TRUE(DisksIntersect({{0, 0}, 1.0}, {{1.5, 0}, 1.0}));
  EXPECT_TRUE(DisksIntersect({{0, 0}, 1.0}, {{2.0, 0}, 1.0}));  // tangent
  EXPECT_FALSE(DisksIntersect({{0, 0}, 1.0}, {{2.1, 0}, 1.0}));
}

TEST(GigTest, IntersectionGraphMatchesPairwiseChecks) {
  Rng rng(41);
  const std::vector<Disk> disks = RandomDisks(15, 10.0, 0.3, 1.0, rng);
  const OcclusionGraph g = BuildGeometricIntersectionGraph(disks);
  for (int i = 0; i < 15; ++i)
    for (int j = i + 1; j < 15; ++j)
      EXPECT_EQ(g.HasEdge(i, j), DisksIntersect(disks[i], disks[j]));
}

/// Theorem 1 machinery: an MWIS instance on a random GIG is a valid
/// AFTER instance with T = 0; the exact solvers agree on both sides.
TEST(HardnessReductionTest, GigMwisEqualsAfterOptimumAtTZero) {
  Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Disk> disks = RandomDisks(12, 6.0, 0.3, 0.9, rng);
    // Lemma 1: the GIG *is* the DOG restricted to t = 0 (plus an isolated
    // target node, which has zero weight and changes nothing).
    const OcclusionGraph gig = BuildGeometricIntersectionGraph(disks);

    std::vector<double> raw_weights(12);
    for (auto& w : raw_weights) w = rng.Uniform(0.5, 3.0);

    // Theorem 1 weight transformation: W'(w) in [0, 1] interpretable as
    // (1-beta) * p(v, w).
    double w_min = raw_weights[0], w_max = raw_weights[0];
    for (double w : raw_weights) {
      w_min = std::min(w_min, w);
      w_max = std::max(w_max, w);
    }
    std::vector<double> transformed(12);
    for (int i = 0; i < 12; ++i)
      transformed[i] = (raw_weights[i] + w_min) / (w_max + w_min);

    // The AFTER optimum at T=0 (select a visible, i.e., independent, set
    // maximizing sum of utilities) is exactly MWIS on the same graph: the
    // argmax sets agree because the transformation is affine monotone.
    const MwisResult raw_opt = ExactMwis(gig, raw_weights);
    const MwisResult after_opt = ExactMwis(gig, transformed);
    EXPECT_EQ(gig.CountConflicts(raw_opt.selected), 0);
    EXPECT_EQ(gig.CountConflicts(after_opt.selected), 0);
    // Both optima must attain the optimal transformed value.
    EXPECT_NEAR(SelectionWeight(gig, transformed, after_opt.selected),
                after_opt.weight, 1e-9);
    EXPECT_LE(SelectionWeight(gig, transformed, raw_opt.selected),
              after_opt.weight + 1e-9);
  }
}

}  // namespace
}  // namespace after
