#include "graph/occlusion_converter_3d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

constexpr double kBody = 0.25;

TEST(ViewCapTest, BasicGeometry) {
  const ViewCap cap =
      ComputeViewCap(Vec3(0, 0, 0), Vec3(2, 0, 0), kBody);
  EXPECT_TRUE(cap.valid);
  EXPECT_NEAR(cap.direction.x, 1.0, 1e-12);
  EXPECT_NEAR(cap.direction.y, 0.0, 1e-12);
  EXPECT_NEAR(cap.angular_radius, std::asin(kBody / 2.0), 1e-12);
  EXPECT_NEAR(cap.distance, 2.0, 1e-12);
}

TEST(ViewCapTest, EnclosingBodyCoversSphere) {
  const ViewCap cap =
      ComputeViewCap(Vec3(0, 0, 0), Vec3(0.1, 0, 0), kBody);
  EXPECT_NEAR(cap.angular_radius, M_PI, 1e-12);
}

TEST(CapsOverlapTest, AlignedAndOpposed) {
  const ViewCap a = ComputeViewCap(Vec3(0, 0, 0), Vec3(2, 0, 0), kBody);
  const ViewCap b =
      ComputeViewCap(Vec3(0, 0, 0), Vec3(4, 0.1, 0), kBody);
  const ViewCap c = ComputeViewCap(Vec3(0, 0, 0), Vec3(-2, 0, 0), kBody);
  EXPECT_TRUE(CapsOverlap(a, b));
  EXPECT_FALSE(CapsOverlap(a, c));
}

TEST(CapsOverlapTest, VerticalSeparationMatters) {
  // Two users at the same bearing but different heights: in 2D they
  // would occlude; in 3D the higher one clears the lower.
  const Vec3 target(0, 0, 0);
  const ViewCap low = ComputeViewCap(target, Vec3(2, 0, 0), kBody);
  const ViewCap high = ComputeViewCap(target, Vec3(2, 0, 2.5), kBody);
  EXPECT_FALSE(CapsOverlap(low, high));
  const ViewCap slightly_high =
      ComputeViewCap(target, Vec3(2, 0, 0.2), kBody);
  EXPECT_TRUE(CapsOverlap(low, slightly_high));
}

TEST(BuildOcclusionGraph3dTest, TargetIsolatedAndCollinearBlocked) {
  const std::vector<Vec3> positions = {
      {0, 0, 0}, {2, 0, 0}, {4, 0, 0}, {0, 3, 1}};
  const OcclusionGraph g = BuildOcclusionGraph3d(positions, 0, kBody);
  EXPECT_EQ(g.Degree(0), 0);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(BuildOcclusionGraph3dTest, ReducesToFlatConverterInPlane) {
  // For z = 0 scenes, the 3D cap graph must equal the 2D arc graph.
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Vec2> flat;
    std::vector<Vec3> spatial;
    for (int i = 0; i < 10; ++i) {
      const double x = rng.Uniform(0, 8);
      const double y = rng.Uniform(0, 8);
      flat.emplace_back(x, y);
      spatial.emplace_back(x, y, 0.0);
    }
    const OcclusionGraph g2 = BuildOcclusionGraph(flat, 0, kBody);
    const OcclusionGraph g3 = BuildOcclusionGraph3d(spatial, 0, kBody);
    for (int i = 0; i < 10; ++i)
      for (int j = i + 1; j < 10; ++j)
        EXPECT_EQ(g2.HasEdge(i, j), g3.HasEdge(i, j))
            << "trial " << trial << " pair " << i << "," << j;
  }
}

TEST(ComputeVisibility3dTest, DepthOrderedBlocking) {
  const std::vector<Vec3> positions = {
      {0, 0, 0}, {2, 0, 0}, {4, 0, 0}, {4, 0, 3}};
  std::vector<bool> rendered = {false, true, true, true};
  const auto visible = ComputeVisibility3d(positions, 0, kBody, rendered);
  EXPECT_TRUE(visible[1]);
  EXPECT_FALSE(visible[2]);  // behind user 1
  EXPECT_TRUE(visible[3]);   // elevated, clear
}

TEST(ComputeVisibility3dTest, MatchesFlatVisibilityInPlane) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> flat;
    std::vector<Vec3> spatial;
    std::vector<bool> rendered;
    for (int i = 0; i < 12; ++i) {
      const double x = rng.Uniform(0, 8);
      const double y = rng.Uniform(0, 8);
      flat.emplace_back(x, y);
      spatial.emplace_back(x, y, 0.0);
      rendered.push_back(i != 0 && rng.Bernoulli(0.6));
    }
    const auto v2 = ComputeVisibility(flat, 0, kBody, rendered);
    const auto v3 = ComputeVisibility3d(spatial, 0, kBody, rendered);
    EXPECT_EQ(v2, v3) << "trial " << trial;
  }
}

}  // namespace
}  // namespace after
