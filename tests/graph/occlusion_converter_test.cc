#include "graph/occlusion_converter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

constexpr double kBody = 0.25;

TEST(ViewArcTest, BasicGeometry) {
  const ViewArc arc = ComputeViewArc(Vec2(0, 0), Vec2(2, 0), kBody);
  EXPECT_TRUE(arc.valid);
  EXPECT_NEAR(arc.center, 0.0, 1e-12);
  EXPECT_NEAR(arc.half_width, std::asin(kBody / 2.0), 1e-12);
  EXPECT_NEAR(arc.distance, 2.0, 1e-12);
}

TEST(ViewArcTest, AngleFollowsPosition) {
  const ViewArc up = ComputeViewArc(Vec2(0, 0), Vec2(0, 3), kBody);
  EXPECT_NEAR(up.center, M_PI / 2.0, 1e-12);
  const ViewArc left = ComputeViewArc(Vec2(0, 0), Vec2(-3, 0), kBody);
  EXPECT_NEAR(std::abs(left.center), M_PI, 1e-12);
}

TEST(ViewArcTest, CloserUsersOccupyWiderArcs) {
  const ViewArc near = ComputeViewArc(Vec2(0, 0), Vec2(1, 0), kBody);
  const ViewArc far = ComputeViewArc(Vec2(0, 0), Vec2(5, 0), kBody);
  EXPECT_GT(near.half_width, far.half_width);
}

TEST(ViewArcTest, OverlappingBodyCoversFullCircle) {
  const ViewArc arc = ComputeViewArc(Vec2(0, 0), Vec2(0.1, 0), kBody);
  EXPECT_NEAR(arc.half_width, M_PI, 1e-12);
}

TEST(ArcsOverlapTest, SameDirectionOverlaps) {
  const ViewArc a = ComputeViewArc(Vec2(0, 0), Vec2(2, 0), kBody);
  const ViewArc b = ComputeViewArc(Vec2(0, 0), Vec2(4, 0.1), kBody);
  EXPECT_TRUE(ArcsOverlap(a, b));
}

TEST(ArcsOverlapTest, OppositeDirectionsDoNot) {
  const ViewArc a = ComputeViewArc(Vec2(0, 0), Vec2(2, 0), kBody);
  const ViewArc b = ComputeViewArc(Vec2(0, 0), Vec2(-2, 0), kBody);
  EXPECT_FALSE(ArcsOverlap(a, b));
}

TEST(ArcsOverlapTest, WrapAroundPi) {
  // Two users just either side of the -x axis: angles near +pi and -pi
  // must still be detected as overlapping.
  const ViewArc a = ComputeViewArc(Vec2(0, 0), Vec2(-3, 0.05), kBody);
  const ViewArc b = ComputeViewArc(Vec2(0, 0), Vec2(-3, -0.05), kBody);
  EXPECT_GT(a.center, 0.0);
  EXPECT_LT(b.center, 0.0);
  EXPECT_TRUE(ArcsOverlap(a, b));
}

TEST(ArcsOverlapTest, InvalidArcNeverOverlaps) {
  ViewArc invalid;
  const ViewArc a = ComputeViewArc(Vec2(0, 0), Vec2(2, 0), kBody);
  EXPECT_FALSE(ArcsOverlap(invalid, a));
  EXPECT_FALSE(ArcsOverlap(a, invalid));
}

TEST(ComputeViewArcsTest, TargetIsInvalid) {
  const std::vector<Vec2> positions = {{0, 0}, {1, 0}, {0, 1}};
  const auto arcs = ComputeViewArcs(positions, 0, kBody);
  EXPECT_FALSE(arcs[0].valid);
  EXPECT_TRUE(arcs[1].valid);
  EXPECT_TRUE(arcs[2].valid);
}

TEST(BuildOcclusionGraphTest, CollinearUsersOcclude) {
  // Users 1 and 2 lie in the same direction from target 0: edge expected.
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {4, 0}, {0, 3}};
  const OcclusionGraph g = BuildOcclusionGraph(positions, 0, kBody);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

TEST(BuildOcclusionGraphTest, TargetIsolated) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {2.2, 0.05}};
  const OcclusionGraph g = BuildOcclusionGraph(positions, 0, kBody);
  EXPECT_EQ(g.Degree(0), 0);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(BuildOcclusionGraphTest, EdgeIffArcsOverlapProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> positions;
    for (int i = 0; i < 12; ++i)
      positions.emplace_back(rng.Uniform(0, 8), rng.Uniform(0, 8));
    const int target = rng.UniformInt(12);
    const OcclusionGraph g = BuildOcclusionGraph(positions, target, kBody);
    const auto arcs = ComputeViewArcs(positions, target, kBody);
    for (int i = 0; i < 12; ++i) {
      for (int j = i + 1; j < 12; ++j) {
        if (i == target || j == target) {
          EXPECT_FALSE(g.HasEdge(i, j));
          continue;
        }
        EXPECT_EQ(g.HasEdge(i, j), ArcsOverlap(arcs[i], arcs[j]))
            << "pair (" << i << "," << j << ") trial " << trial;
      }
    }
  }
}

TEST(BuildDynamicOcclusionGraphTest, OneGraphPerStep) {
  const std::vector<std::vector<Vec2>> trajectory = {
      {{0, 0}, {2, 0}, {4, 0}},
      {{0, 0}, {2, 0}, {0, 4}},
  };
  const DynamicOcclusionGraph dog =
      BuildDynamicOcclusionGraph(trajectory, 0, kBody);
  EXPECT_EQ(dog.num_steps(), 2);
  EXPECT_TRUE(dog.At(0).HasEdge(1, 2));
  EXPECT_FALSE(dog.At(1).HasEdge(1, 2));
}

TEST(ComputeVisibilityTest, NearerRenderedUserBlocks) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {4, 0}};
  std::vector<bool> rendered = {false, true, true};
  const auto visible = ComputeVisibility(positions, 0, kBody, rendered);
  EXPECT_TRUE(visible[1]);   // nothing in front
  EXPECT_FALSE(visible[2]);  // behind user 1
}

TEST(ComputeVisibilityTest, NotRenderedDoesNotBlock) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}, {4, 0}};
  std::vector<bool> rendered = {false, false, true};
  const auto visible = ComputeVisibility(positions, 0, kBody, rendered);
  EXPECT_FALSE(visible[1]);  // not rendered -> not visible
  EXPECT_TRUE(visible[2]);   // user 1 hidden, so 2 is clear
}

TEST(ComputeVisibilityTest, TargetNeverVisible) {
  const std::vector<Vec2> positions = {{0, 0}, {2, 0}};
  std::vector<bool> rendered = {true, true};
  const auto visible = ComputeVisibility(positions, 0, kBody, rendered);
  EXPECT_FALSE(visible[0]);
}

TEST(ComputeVisibilityTest, SeparatedUsersAllVisible) {
  const std::vector<Vec2> positions = {{0, 0}, {3, 0}, {0, 3}, {-3, 0}};
  std::vector<bool> rendered = {false, true, true, true};
  const auto visible = ComputeVisibility(positions, 0, kBody, rendered);
  EXPECT_TRUE(visible[1]);
  EXPECT_TRUE(visible[2]);
  EXPECT_TRUE(visible[3]);
}

TEST(ComputeVisibilityTest, VisibleSetConsistentWithOcclusionGraph) {
  // Property: if the rendered set is independent in the occlusion graph,
  // every rendered user is visible.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> positions;
    for (int i = 0; i < 10; ++i)
      positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const int target = 0;
    const OcclusionGraph g = BuildOcclusionGraph(positions, target, kBody);
    // Build a greedy independent set among 1..9.
    std::vector<bool> rendered(10, false);
    for (int w = 1; w < 10; ++w) {
      bool conflict = false;
      for (int u : g.Neighbors(w))
        if (rendered[u]) conflict = true;
      if (!conflict) rendered[w] = true;
    }
    const auto visible = ComputeVisibility(positions, target, kBody, rendered);
    for (int w = 1; w < 10; ++w)
      if (rendered[w]) EXPECT_TRUE(visible[w]) << "trial " << trial;
  }
}

bool SameArc(const ViewArc& a, const ViewArc& b) {
  return a.valid == b.valid && a.center == b.center &&
         a.half_width == b.half_width && a.distance == b.distance;
}

bool SameGraph(const OcclusionGraph& a, const OcclusionGraph& b) {
  if (!(a == b)) return false;
  // operator== already compares adjacency and the edge list including
  // order; double-check the edge stream explicitly since bit-exact
  // insertion order is the delta path's whole contract.
  return a.edges() == b.edges();
}

TEST(DeltaConverterTest, UpdateViewArcsMatchesFullRecompute) {
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 4 + rng.UniformInt(29);
    const int target = rng.UniformInt(n);
    std::vector<Vec2> positions;
    for (int i = 0; i < n; ++i)
      positions.emplace_back(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    auto arcs = ComputeViewArcs(positions, target, kBody);

    std::vector<int> moved;
    for (int i = 0; i < n; ++i) {
      if (i == target || rng.UniformInt(3) != 0) continue;
      moved.push_back(i);
      positions[i] += Vec2(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
    }
    UpdateViewArcs(positions, target, kBody, moved, &arcs);

    const auto fresh = ComputeViewArcs(positions, target, kBody);
    ASSERT_EQ(arcs.size(), fresh.size());
    for (int i = 0; i < n; ++i)
      ASSERT_TRUE(SameArc(arcs[i], fresh[i]))
          << "arc " << i << " trial " << trial;
  }
}

/// The core delta-tick invariant: patching the previous graph with the
/// moved set yields the same AddEdge stream — and therefore a bitwise-
/// identical graph — as rebuilding from scratch.
TEST(DeltaConverterTest, UpdateOcclusionGraphIsBitExact) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + rng.UniformInt(29);
    const int target = rng.UniformInt(n);
    std::vector<Vec2> positions;
    for (int i = 0; i < n; ++i)
      positions.emplace_back(rng.Uniform(-3, 3), rng.Uniform(-3, 3));
    auto arcs = ComputeViewArcs(positions, target, kBody);
    OcclusionGraph graph = BuildOcclusionGraphFromArcs(arcs);
    ASSERT_TRUE(SameGraph(graph, BuildOcclusionGraph(positions, target, kBody)))
        << "trial " << trial;

    // Walk several ticks so errors would compound if carried edges ever
    // diverged from the scratch build.
    for (int step = 0; step < 6; ++step) {
      std::vector<int> moved;
      std::vector<bool> is_moved(n, false);
      for (int i = 0; i < n; ++i) {
        if (i == target || rng.UniformInt(4) != 0) continue;
        moved.push_back(i);
        is_moved[i] = true;
        positions[i] += Vec2(rng.Uniform(-2, 2), rng.Uniform(-2, 2));
      }
      UpdateViewArcs(positions, target, kBody, moved, &arcs);
      graph = UpdateOcclusionGraph(graph, arcs, moved, is_moved);
      ASSERT_TRUE(
          SameGraph(graph, BuildOcclusionGraph(positions, target, kBody)))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(DeltaConverterTest, EmptyMovedSetIsIdentity) {
  Rng rng(5);
  const int n = 12;
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(-2, 2), rng.Uniform(-2, 2));
  auto arcs = ComputeViewArcs(positions, 0, kBody);
  const OcclusionGraph graph = BuildOcclusionGraphFromArcs(arcs);
  const OcclusionGraph updated =
      UpdateOcclusionGraph(graph, arcs, {}, std::vector<bool>(n, false));
  EXPECT_TRUE(SameGraph(graph, updated));
}

TEST(DeltaConverterTest, AddEdgeUncheckedMatchesAddEdgeLayout) {
  // The bulk path skips the dedup scan but must leave the same
  // adjacency and edge layout for a lexicographic duplicate-free
  // stream — the only stream the builders produce.
  Rng rng(77);
  const int n = 16;
  std::vector<std::pair<int, int>> stream;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.UniformInt(2) == 0) stream.emplace_back(u, v);
  OcclusionGraph checked(n);
  OcclusionGraph unchecked(n);
  unchecked.ReserveEdges(static_cast<int>(stream.size()));
  for (const auto& e : stream) {
    checked.AddEdge(e.first, e.second);
    unchecked.AddEdgeUnchecked(e.first, e.second);
  }
  EXPECT_TRUE(SameGraph(checked, unchecked));
}

}  // namespace
}  // namespace after
