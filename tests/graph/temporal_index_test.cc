#include "graph/temporal_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

constexpr double kRadius = 2.0;

TemporalIndex::Options Opts() {
  TemporalIndex::Options options;
  options.co_presence_radius = kRadius;
  return options;
}

bool CoPresent(const Vec2& a, const Vec2& b) {
  return (a - b).NormSq() <= kRadius * kRadius;
}

TEST(TemporalIndexTest, RebuildScoresCoPresenceOnly) {
  // 0 and 1 within radius; 2 far from both.
  const std::vector<Vec2> positions = {{0, 0}, {1, 0}, {10, 10}};
  TemporalIndex index(Opts());
  index.Rebuild(positions, /*tick=*/0);
  const auto view = index.PublishView();
  EXPECT_EQ(view->score(0, 1), TemporalView::kCoPresent);
  EXPECT_EQ(view->score(1, 0), TemporalView::kCoPresent);
  EXPECT_EQ(view->score(0, 2), TemporalView::kNever);
  EXPECT_EQ(view->score(2, 1), TemporalView::kNever);
}

TEST(TemporalIndexTest, DepartingPairIsStampedWithItsLastCoPresentTick) {
  std::vector<Vec2> positions = {{0, 0}, {1, 0}};
  TemporalIndex index(Opts());
  index.Rebuild(positions, 0);
  // Still together at ticks 1..3 (agent 1 jitters in range), apart at 4.
  for (std::int64_t tick = 1; tick <= 3; ++tick) {
    positions[1].x = 1.0 + 0.1 * tick;
    index.Update(positions, {1}, tick);
    EXPECT_EQ(index.PublishView()->score(0, 1), TemporalView::kCoPresent);
  }
  positions[1].x = 50.0;
  index.Update(positions, {1}, 4);
  // The stamp is the previous update's tick — the last tick at which
  // the pair was actually co-present.
  EXPECT_EQ(index.PublishView()->score(0, 1), 3);
  EXPECT_EQ(index.PublishView()->score(1, 0), 3);
  // Coming back together restores kCoPresent; drifting apart again
  // restamps with the newer tick.
  positions[1].x = 0.5;
  index.Update(positions, {1}, 5);
  EXPECT_EQ(index.PublishView()->score(0, 1), TemporalView::kCoPresent);
  positions[1].x = 50.0;
  index.Update(positions, {1}, 6);
  EXPECT_EQ(index.PublishView()->score(0, 1), 5);
}

TEST(TemporalIndexTest, RebuildForgetsHistory) {
  std::vector<Vec2> positions = {{0, 0}, {1, 0}};
  TemporalIndex index(Opts());
  index.Rebuild(positions, 0);
  positions[1].x = 50.0;
  index.Update(positions, {1}, 1);
  EXPECT_EQ(index.PublishView()->score(0, 1), 0);
  index.Rebuild(positions, 2);
  EXPECT_EQ(index.PublishView()->score(0, 1), TemporalView::kNever);
}

/// Fuzz the incremental update against an exhaustively maintained
/// reference over a random walk, including doubly-moved pairs (both
/// endpoints in one moved set must behave idempotently).
TEST(TemporalIndexTest, UpdateMatchesExhaustiveReference) {
  Rng rng(4242);
  const int n = 12;
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 8), rng.Uniform(0, 8));

  TemporalIndex index(Opts());
  index.Rebuild(positions, 0);
  // reference[t][c]: kCoPresent / last co-present tick / kNever.
  std::vector<std::vector<std::int32_t>> reference(
      n, std::vector<std::int32_t>(n, TemporalView::kNever));
  for (int t = 0; t < n; ++t)
    for (int c = 0; c < n; ++c)
      if (t != c && CoPresent(positions[t], positions[c]))
        reference[t][c] = TemporalView::kCoPresent;

  std::int64_t previous_tick = 0;
  for (std::int64_t tick = 1; tick <= 40; ++tick) {
    std::vector<int> moved;
    for (int i = 0; i < n; ++i) {
      if (rng.UniformInt(3) != 0) continue;
      moved.push_back(i);
      positions[i].x += rng.Uniform(-3, 3);
      positions[i].y += rng.Uniform(-3, 3);
    }
    index.Update(positions, moved, tick);
    // Reference semantics: a pair's status can only change if an
    // endpoint moved; leaving co-presence stamps the previous tick.
    for (int t = 0; t < n; ++t) {
      for (int c = 0; c < n; ++c) {
        if (t == c) continue;
        const bool now = CoPresent(positions[t], positions[c]);
        if (now) {
          reference[t][c] = TemporalView::kCoPresent;
        } else if (reference[t][c] == TemporalView::kCoPresent) {
          reference[t][c] = static_cast<std::int32_t>(previous_tick);
        }
      }
    }
    previous_tick = tick;

    const auto view = index.PublishView();
    for (int t = 0; t < n; ++t)
      for (int c = 0; c < n; ++c)
        if (t != c)
          ASSERT_EQ(view->score(t, c), reference[t][c])
              << "pair (" << t << "," << c << ") at tick " << tick;
  }
}

/// Views produced through the patch-from-pooled-buffer fast path must
/// be indistinguishable from full copies. Index A publishes every tick
/// (and drops most views, so its pool recycles + patches); index B is
/// fed identically but publishes only at the end (always a fresh copy).
TEST(TemporalIndexTest, PatchedViewsEqualFullCopies) {
  Rng rng(99);
  const int n = 10;
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 6), rng.Uniform(0, 6));

  TemporalIndex patched(Opts());
  TemporalIndex copied(Opts());
  patched.Rebuild(positions, 0);
  copied.Rebuild(positions, 0);
  std::shared_ptr<const TemporalView> held;  // keeps one buffer busy
  for (std::int64_t tick = 1; tick <= 30; ++tick) {
    std::vector<int> moved;
    for (int i = 0; i < n; ++i) {
      if (rng.UniformInt(4) != 0) continue;
      moved.push_back(i);
      positions[i].x += rng.Uniform(-2, 2);
      positions[i].y += rng.Uniform(-2, 2);
    }
    patched.Update(positions, moved, tick);
    copied.Update(positions, moved, tick);
    const auto view = patched.PublishView();
    if (tick % 7 == 0) held = view;  // sometimes pin a view alive
  }
  const auto a = patched.PublishView();
  const auto b = copied.PublishView();
  for (int t = 0; t < n; ++t)
    for (int c = 0; c < n; ++c)
      ASSERT_EQ(a->score(t, c), b->score(t, c))
          << "pair (" << t << "," << c << ")";
}

TEST(TemporalViewTest, FillPruneMaskKeepsExactlyTopK) {
  Rng rng(7);
  const int n = 9;
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  TemporalIndex index(Opts());
  index.Rebuild(positions, 0);
  for (std::int64_t tick = 1; tick <= 6; ++tick) {
    std::vector<int> moved;
    for (int i = 0; i < n; ++i)
      if (rng.UniformInt(2) == 0) {
        moved.push_back(i);
        positions[i].x += rng.Uniform(-4, 4);
      }
    index.Update(positions, moved, tick);
  }
  const auto view = index.PublishView();

  for (int target = 0; target < n; ++target) {
    const int k = 3;
    std::vector<bool> mask;
    view->FillPruneMask(target, k, &mask);
    ASSERT_EQ(static_cast<int>(mask.size()), n);
    EXPECT_FALSE(mask[target]);
    int pruned = 0;
    for (int c = 0; c < n; ++c) pruned += mask[c] ? 1 : 0;
    EXPECT_EQ(pruned, n - 1 - k);
    // Survivors are exactly the ranked top-k.
    const std::vector<int> top = view->TopCandidates(target, k);
    ASSERT_EQ(static_cast<int>(top.size()), k);
    for (int c : top) EXPECT_FALSE(mask[c]) << "candidate " << c;
    // Determinism: a second fill is identical.
    std::vector<bool> again;
    view->FillPruneMask(target, k, &again);
    EXPECT_EQ(mask, again);
  }

  // Degenerate k prunes nothing.
  for (int k : {0, -1, n - 1, n, n + 5}) {
    std::vector<bool> mask;
    view->FillPruneMask(0, k, &mask);
    EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 0)
        << "k=" << k;
  }
}

TEST(TemporalViewTest, RankingPrefersCoPresentThenRecentThenIndex) {
  // Candidate layout around target 0: 1 is co-present now, 2 left at
  // tick 5, 3 left at tick 2, 4 was never close. 5 is co-present too —
  // ties break by lower index.
  std::vector<Vec2> positions = {{0, 0}, {1, 0}, {0, 1},
                                 {1, 1}, {40, 40}, {0.5, 0.5}};
  TemporalIndex index(Opts());
  index.Rebuild(positions, 0);
  positions[3] = {30, 30};
  index.Update(positions, {3}, 2);
  positions[3] = {31, 30};  // keep 3 away; move 2 away later
  index.Update(positions, {3}, 5);
  positions[2] = {-30, 30};
  index.Update(positions, {2}, 6);
  const auto view = index.PublishView();

  ASSERT_EQ(view->score(0, 1), TemporalView::kCoPresent);
  ASSERT_EQ(view->score(0, 5), TemporalView::kCoPresent);
  ASSERT_EQ(view->score(0, 2), 5);
  ASSERT_EQ(view->score(0, 3), 0);
  ASSERT_EQ(view->score(0, 4), TemporalView::kNever);
  EXPECT_EQ(view->TopCandidates(0, 4), (std::vector<int>{1, 5, 2, 3}));
}

}  // namespace
}  // namespace after
