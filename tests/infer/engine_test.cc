#include "infer/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <deque>
#include <vector>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"
#include "infer/dispatch.h"

namespace after {
namespace {

// Documented f32-vs-f64 tolerance of the fused engine
// (docs/inference.md): |f32 - f64| <= kAtol + kRtol * |f64| per entry.
// Observed drift on the table2-style datasets is below 1e-5; the bound
// leaves an order of magnitude of headroom.
constexpr double kAtol = 1e-4;
constexpr double kRtol = 1e-4;

DatasetConfig TinyConfig() {
  DatasetConfig config;
  config.num_users = 20;
  config.num_steps = 12;
  config.num_sessions = 2;
  config.room_side = 6.0;
  config.seed = 5;
  return config;
}

PoshgnnConfig ModelConfig() {
  PoshgnnConfig config;
  config.hidden_dim = 8;
  config.seed = 9;
  return config;
}

Poshgnn TrainedModel(const Dataset& dataset, PoshgnnConfig config) {
  Poshgnn model(config);
  TrainOptions train;
  train.epochs = 4;
  train.targets_per_epoch = 3;
  train.seed = 21;
  model.Train(dataset, train);
  EXPECT_TRUE(model.last_train_status().ok());
  return model;
}

// Bundles a StepContext with the occlusion graph it points into.
struct BoundContext {
  BoundContext(const Dataset& dataset, int session, int t, int target)
      : occlusion(BuildOcclusionGraph(
            dataset.sessions[session].PositionsAt(t), target,
            dataset.sessions[session].body_radius())) {
    const XrWorld& world = dataset.sessions[session];
    context.t = t;
    context.target = target;
    context.positions = &world.PositionsAt(t);
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.body_radius = world.body_radius();
  }
  OcclusionGraph occlusion;
  StepContext context;
};

void ExpectWithinTolerance(const std::vector<float>& got, const Matrix& want,
                           const char* label) {
  ASSERT_EQ(static_cast<int>(got.size()), want.size()) << label;
  for (int r = 0; r < want.rows(); ++r)
    for (int c = 0; c < want.cols(); ++c) {
      const double reference = want.At(r, c);
      const double actual =
          got[static_cast<std::size_t>(r) * want.cols() + c];
      EXPECT_LE(std::abs(actual - reference),
                kAtol + kRtol * std::abs(reference))
          << label << " at (" << r << ", " << c << "): f32 " << actual
          << " vs f64 " << reference;
    }
}

// The reference double forward at session start, computed directly from
// Poshgnn::Parameters() with plain Matrix arithmetic (independent of
// both the autograd tape and the fused kernels).
struct ReferenceForward {
  Matrix features, mask, p_hat, s_hat, hidden, proto, sigma, rec;
};

Matrix GcnReference(const Matrix& x, const Matrix& adjacency,
                    const Matrix& m1, const Matrix& m2, const Matrix& bias,
                    bool relu) {
  Matrix out = x.MatMul(m1) + adjacency.MatMul(x).MatMul(m2);
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c) {
      const double z = out.At(r, c) + bias.At(0, c);
      out.At(r, c) = relu ? (z > 0.0 ? z : 0.0) : 1.0 / (1.0 + std::exp(-z));
    }
  return out;
}

ReferenceForward ComputeReference(const Poshgnn& model,
                                  const StepContext& context) {
  const MiaOutput mia = model.AggregateFresh(context);
  const int n = mia.features.rows();
  const int k = model.config().hidden_dim;
  std::vector<Matrix> params;
  for (const Variable& p : model.Parameters()) params.push_back(p.value());

  ReferenceForward ref;
  ref.features = mia.features;
  ref.mask = mia.mask;
  ref.p_hat = mia.p_hat;
  ref.s_hat = mia.s_hat;
  ref.hidden = GcnReference(mia.features, mia.adjacency, params[0], params[1],
                            params[2], /*relu=*/true);
  ref.proto = GcnReference(ref.hidden, mia.adjacency, params[3], params[4],
                           params[5], /*relu=*/false);
  if (model.config().use_lwp) {
    const Matrix lwp_input = mia.features.ConcatCols(mia.delta)
                                 .ConcatCols(Matrix(n, k))
                                 .ConcatCols(Matrix(n, 1));
    Matrix h = GcnReference(lwp_input, mia.adjacency, params[6], params[7],
                            params[8], /*relu=*/true);
    h = GcnReference(h, mia.adjacency, params[9], params[10], params[11],
                     /*relu=*/true);
    ref.sigma = GcnReference(h, mia.adjacency, params[12], params[13],
                             params[14], /*relu=*/false);
    ref.rec = Matrix(n, 1);
    for (int w = 0; w < n; ++w)
      ref.rec.At(w, 0) = ref.mask.At(w, 0) * (1.0 - ref.sigma.At(w, 0)) *
                         ref.proto.At(w, 0);
  } else {
    ref.rec = ref.mask.Hadamard(ref.proto);
  }
  return ref;
}

infer::PoshgnnInferEngine MakeEngine(
    const Poshgnn& model,
    infer::SimdLevel level = infer::ActiveSimdLevel()) {
  infer::EngineConfig config;
  config.hidden_dim = model.config().hidden_dim;
  config.beta = model.config().beta;
  config.threshold = model.config().threshold;
  config.max_recommendations = model.config().max_recommendations;
  config.use_mia = model.config().use_mia;
  config.use_lwp = model.config().use_lwp;
  std::vector<Matrix> values;
  for (const Variable& p : model.Parameters()) values.push_back(p.value());
  return infer::PoshgnnInferEngine(config, values, level);
}

TEST(InferEngineTest, EveryLayerWithinToleranceOfDoubleReference) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model = TrainedModel(dataset, ModelConfig());
  const infer::PoshgnnInferEngine engine = MakeEngine(model);

  for (int target : {0, 3, 11, 19}) {
    const BoundContext bound(dataset, 0, 0, target);
    const infer::ForwardTrace trace = engine.Trace(bound.context);
    const ReferenceForward ref = ComputeReference(model, bound.context);
    ExpectWithinTolerance(trace.features, ref.features, "features");
    ExpectWithinTolerance(trace.mask, ref.mask, "mask");
    ExpectWithinTolerance(trace.p_hat, ref.p_hat, "p_hat");
    ExpectWithinTolerance(trace.s_hat, ref.s_hat, "s_hat");
    ExpectWithinTolerance(trace.pdr_hidden, ref.hidden, "pdr_hidden");
    ExpectWithinTolerance(trace.prototype, ref.proto, "prototype");
    ExpectWithinTolerance(trace.sigma, ref.sigma, "sigma");
    ExpectWithinTolerance(trace.recommendation, ref.rec, "recommendation");
  }
}

TEST(InferEngineTest, LwpWeightFoldMatchesFullConcatInput) {
  // The engine never materializes the [x̂ | Δ | h | r] concatenation —
  // the fold (bias + e0 self row, degree ⊗ e0 neighbor row, dropped
  // zero rows) must be algebraically identical to the full product.
  // An untrained model keeps weights at their random init, which is
  // plenty to expose a wrong fold.
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model(ModelConfig());
  const infer::PoshgnnInferEngine engine = MakeEngine(model);
  const BoundContext bound(dataset, 1, 2, 5);
  const infer::ForwardTrace trace = engine.Trace(bound.context);
  const ReferenceForward ref = ComputeReference(model, bound.context);
  ExpectWithinTolerance(trace.sigma, ref.sigma, "sigma(folded LWP)");
  ExpectWithinTolerance(trace.recommendation, ref.rec, "recommendation");
}

TEST(InferEngineTest, ScalarAndActiveTiersProduceSameSelections) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model = TrainedModel(dataset, ModelConfig());
  const infer::PoshgnnInferEngine scalar =
      MakeEngine(model, infer::SimdLevel::kScalar);
  const infer::PoshgnnInferEngine active = MakeEngine(model);
  for (int target : {1, 8, 14}) {
    const BoundContext bound(dataset, 0, 3, target);
    EXPECT_EQ(scalar.Recommend(bound.context),
              active.Recommend(bound.context))
        << "target " << target;
    // Intermediates agree to float round-off (FMA contraction only).
    const infer::ForwardTrace a = scalar.Trace(bound.context);
    const infer::ForwardTrace b = active.Trace(bound.context);
    ASSERT_EQ(a.recommendation.size(), b.recommendation.size());
    for (std::size_t i = 0; i < a.recommendation.size(); ++i)
      EXPECT_NEAR(a.recommendation[i], b.recommendation[i], 1e-5f);
  }
}

TEST(InferEngineTest, SelectionsMatchReferenceEngineForAllTargets) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model = TrainedModel(dataset, ModelConfig());
  FrozenPoshgnn fused(model, InferEngine::kFusedF32);
  FrozenPoshgnn reference(model, InferEngine::kReferenceF64);
  EXPECT_EQ(fused.engine(), InferEngine::kFusedF32);
  for (int t : {0, 5, 11}) {
    for (int target = 0; target < dataset.num_users(); ++target) {
      const BoundContext bound(dataset, 1, t, target);
      EXPECT_EQ(fused.Recommend(bound.context),
                reference.Recommend(bound.context))
          << "t " << t << " target " << target;
    }
  }
}

TEST(InferEngineTest, AblationConfigsMatchReferenceSelections) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  for (const bool use_lwp : {false, true}) {
    PoshgnnConfig config = ModelConfig();
    config.use_lwp = use_lwp;
    if (!use_lwp) config.use_mia = false;  // "Only PDR"
    const Poshgnn model = TrainedModel(dataset, config);
    FrozenPoshgnn fused(model, InferEngine::kFusedF32);
    FrozenPoshgnn reference(model, InferEngine::kReferenceF64);
    for (int target : {2, 9, 17}) {
      const BoundContext bound(dataset, 0, 1, target);
      EXPECT_EQ(fused.Recommend(bound.context),
                reference.Recommend(bound.context))
          << "use_lwp " << use_lwp << " target " << target;
    }
  }
}

TEST(InferEngineTest, EvalMetricsIdenticalToReferenceEngine) {
  // End-to-end: the Table II-style evaluation must report identical
  // metrics for both engines — same selections means same utilities,
  // occlusion rates and budget usage everywhere.
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model = TrainedModel(dataset, ModelConfig());
  FrozenPoshgnn fused(model, InferEngine::kFusedF32);
  FrozenPoshgnn reference(model, InferEngine::kReferenceF64);

  EvalOptions options;
  options.num_targets = 6;
  const EvalResult fused_result =
      EvaluateRecommender(fused, dataset, options);
  const EvalResult reference_result =
      EvaluateRecommender(reference, dataset, options);
  EXPECT_TRUE(fused_result.diagnostics.clean());
  EXPECT_TRUE(reference_result.diagnostics.clean());
  EXPECT_DOUBLE_EQ(fused_result.after_utility,
                   reference_result.after_utility);
  EXPECT_DOUBLE_EQ(fused_result.preference_utility,
                   reference_result.preference_utility);
  EXPECT_DOUBLE_EQ(fused_result.social_presence_utility,
                   reference_result.social_presence_utility);
  EXPECT_DOUBLE_EQ(fused_result.view_occlusion_rate,
                   reference_result.view_occlusion_rate);
  EXPECT_DOUBLE_EQ(fused_result.avg_recommended_per_step,
                   reference_result.avg_recommended_per_step);
}

TEST(InferEngineTest, BatchMatchesSequentialAndDedupesDuplicates) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model = TrainedModel(dataset, ModelConfig());
  FrozenPoshgnn fused(model, InferEngine::kFusedF32);

  std::deque<BoundContext> bound;
  std::vector<StepContext> contexts;
  for (int target : {0, 5, 13}) bound.emplace_back(dataset, 0, 0, target);
  for (const BoundContext& b : bound) contexts.push_back(b.context);
  // Duplicate jobs (same snapshot pointers + target) must reuse the
  // first forward's answer.
  contexts.push_back(bound[1].context);
  contexts.push_back(bound[0].context);

  const std::vector<std::vector<bool>> batched =
      fused.RecommendBatch(contexts);
  ASSERT_EQ(batched.size(), contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i)
    EXPECT_EQ(batched[i], fused.Recommend(contexts[i])) << "slot " << i;
  EXPECT_EQ(batched[3], batched[1]);
  EXPECT_EQ(batched[4], batched[0]);
}

TEST(InferEngineTest, SteadyStateServesFromOneWorkspace) {
  const Dataset dataset = GenerateTimikLike(TinyConfig());
  const Poshgnn model(ModelConfig());
  const infer::PoshgnnInferEngine engine = MakeEngine(model);
  for (int step = 0; step < 6; ++step) {
    const BoundContext bound(dataset, 0, step % 4, (3 * step) % 20);
    engine.Recommend(bound.context);
  }
  // Sequential traffic never needs a second workspace; the arena inside
  // it stops growing after warm-up (ArenaTest covers the block math).
  EXPECT_EQ(engine.pool().created(), 1u);
}

TEST(InferEngineTest, EngineNamesParseAndRoundTrip) {
  EXPECT_STREQ(InferEngineName(InferEngine::kFusedF32), "f32");
  EXPECT_STREQ(InferEngineName(InferEngine::kReferenceF64), "f64");
  InferEngine engine = InferEngine::kFusedF32;
  EXPECT_TRUE(ParseInferEngine("f64", &engine));
  EXPECT_EQ(engine, InferEngine::kReferenceF64);
  EXPECT_TRUE(ParseInferEngine("f32", &engine));
  EXPECT_EQ(engine, InferEngine::kFusedF32);
  EXPECT_FALSE(ParseInferEngine("f16", &engine));
  EXPECT_EQ(engine, InferEngine::kFusedF32);  // untouched on failure
}

TEST(InferEngineTest, DefaultEngineHonorsEnvironmentOverride) {
  ASSERT_EQ(::setenv("AFTER_INFER_ENGINE", "f64", 1), 0);
  EXPECT_EQ(DefaultInferEngine(), InferEngine::kReferenceF64);
  ASSERT_EQ(::setenv("AFTER_INFER_ENGINE", "bogus", 1), 0);
  EXPECT_EQ(DefaultInferEngine(), InferEngine::kFusedF32);
  ASSERT_EQ(::unsetenv("AFTER_INFER_ENGINE"), 0);
  EXPECT_EQ(DefaultInferEngine(), InferEngine::kFusedF32);
}

}  // namespace
}  // namespace after
