#include "infer/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "infer/arena.h"
#include "infer/dispatch.h"
#include "infer/tensor.h"
#include "tensor/matrix.h"

namespace after {
namespace infer {
namespace {

TEST(TensorF32Test, FromMatrixNarrowsAndAligns) {
  Rng rng(11);
  const Matrix source = Matrix::Randn(5, 7, 1.0, rng);
  const TensorF32 tensor = TensorF32::FromMatrix(source);
  ASSERT_EQ(tensor.rows(), 5);
  ASSERT_EQ(tensor.cols(), 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(tensor.data()) %
                kTensorAlignment,
            0u);
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 7; ++c)
      EXPECT_EQ(tensor.At(r, c), static_cast<float>(source.At(r, c)));
}

TEST(TensorF32Test, SliceRowsCopiesTheRequestedBlock) {
  Rng rng(12);
  const TensorF32 full = TensorF32::FromMatrix(Matrix::Randn(6, 3, 1.0, rng));
  const TensorF32 slice = full.SliceRows(2, 3);
  ASSERT_EQ(slice.rows(), 3);
  ASSERT_EQ(slice.cols(), 3);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(slice.At(r, c), full.At(2 + r, c));
}

TEST(ArenaTest, SteadyStateReusesOneBlockWithoutGrowing) {
  Arena arena;
  // Warm-up forward: forces overflow chaining from an empty arena.
  for (int i = 0; i < 4; ++i) arena.Allocate(1000);
  EXPECT_GE(arena.block_count(), 1u);
  arena.Reset();
  // After the warm-up Reset the footprint is coalesced into one block.
  EXPECT_EQ(arena.block_count(), 1u);
  const std::size_t warm_capacity = arena.capacity();
  EXPECT_GE(warm_capacity, arena.peak());

  // Steady state: identical forwards never allocate or chain again.
  for (int step = 0; step < 10; ++step) {
    for (int i = 0; i < 4; ++i) arena.Allocate(1000);
    arena.Reset();
    EXPECT_EQ(arena.block_count(), 1u);
    EXPECT_EQ(arena.capacity(), warm_capacity);
  }
}

TEST(ArenaTest, AllocationsAreZeroedAlignedAndStableAcrossOverflow) {
  Arena arena(64);
  float* first = arena.Allocate(64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first) % kTensorAlignment, 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(first[i], 0.0f);
    first[i] = 7.0f;
  }
  // Overflow mid-"forward": the chained block must not move live data.
  float* second = arena.Allocate(4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(second) % kTensorAlignment, 0u);
  EXPECT_GE(arena.block_count(), 2u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(first[i], 7.0f);

  // A reused block hands out zeroed memory again after Reset.
  arena.Reset();
  float* reused = arena.Allocate(64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(reused[i], 0.0f);
}

TEST(WorkspacePoolTest, SequentialAcquirePlateausAtOneWorkspace) {
  WorkspacePool pool;
  for (int i = 0; i < 8; ++i) {
    WorkspacePool::Handle handle = pool.Acquire();
    handle->arena.Allocate(256);
  }
  EXPECT_EQ(pool.created(), 1u);
}

TEST(WorkspacePoolTest, ConcurrentHoldersGetDistinctWorkspaces) {
  WorkspacePool pool;
  {
    WorkspacePool::Handle a = pool.Acquire();
    WorkspacePool::Handle b = pool.Acquire();
    EXPECT_NE(a.get(), b.get());
  }
  EXPECT_EQ(pool.created(), 2u);
  // Both returned: further traffic reuses them.
  { WorkspacePool::Handle c = pool.Acquire(); }
  EXPECT_EQ(pool.created(), 2u);
}

TEST(DispatchTest, NamesAndLevelsAreConsistent) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2Fma), "avx2+fma");
  // ActiveSimdLevel never exceeds what the CPU supports.
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectCpuSimdLevel()));
}

/// The AVX2 and scalar tiers must agree on every kernel to float
/// round-off (the only permitted difference is FMA contraction).
/// Skipped (trivially true) on hosts without AVX2, where Avx2Ops()
/// aliases the scalar table.
class TierEquivalence : public ::testing::Test {
 protected:
  static std::vector<float> RandomVec(int count, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> out(count);
    for (float& v : out)
      v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    return out;
  }
  static void ExpectAllNear(const std::vector<float>& a,
                            const std::vector<float>& b, float tolerance) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(a[i], b[i], tolerance) << "index " << i;
  }
};

TEST_F(TierEquivalence, MatMulMatchesScalar) {
  const int n = 13, k = 9, m = 11;  // deliberately not multiples of 8
  const std::vector<float> a = RandomVec(n * k, 1);
  const std::vector<float> b = RandomVec(k * m, 2);
  std::vector<float> scalar_out(n * m), avx2_out(n * m);
  ScalarOps().matmul(n, k, m, a.data(), b.data(), scalar_out.data());
  Avx2Ops().matmul(n, k, m, a.data(), b.data(), avx2_out.data());
  ExpectAllNear(scalar_out, avx2_out, 1e-5f);
}

TEST_F(TierEquivalence, SumRowsMatchesScalar) {
  const int rows = 10, cols = 21;
  const std::vector<float> x = RandomVec(rows * cols, 3);
  const std::vector<int> idx = {0, 3, 3, 9, 7};
  std::vector<float> scalar_out(cols), avx2_out(cols);
  ScalarOps().sum_rows(x.data(), cols, idx.data(),
                       static_cast<int>(idx.size()), scalar_out.data());
  Avx2Ops().sum_rows(x.data(), cols, idx.data(),
                     static_cast<int>(idx.size()), avx2_out.data());
  // Same additions in the same order: bit-identical.
  ExpectAllNear(scalar_out, avx2_out, 0.0f);
}

TEST_F(TierEquivalence, GcnLayerMatchesScalarForEveryActivation) {
  const int n = 7, in = 9, out = 12;
  const std::vector<float> x = RandomVec(n * in, 4);
  const std::vector<float> ax = RandomVec(n * in, 5);
  const std::vector<float> w_self = RandomVec(in * out, 6);
  const std::vector<float> w_neigh = RandomVec(in * out, 7);
  const std::vector<float> bias = RandomVec(out, 8);
  const std::vector<float> deg = RandomVec(n, 9);
  const std::vector<float> deg_row = RandomVec(out, 10);
  for (Act act : {Act::kNone, Act::kRelu, Act::kSigmoid}) {
    std::vector<float> scalar_out(n * out), avx2_out(n * out);
    ScalarOps().gcn_layer(n, in, out, x.data(), ax.data(), w_self.data(),
                          w_neigh.data(), bias.data(), deg.data(),
                          deg_row.data(), act, scalar_out.data());
    Avx2Ops().gcn_layer(n, in, out, x.data(), ax.data(), w_self.data(),
                        w_neigh.data(), bias.data(), deg.data(),
                        deg_row.data(), act, avx2_out.data());
    ExpectAllNear(scalar_out, avx2_out, 1e-5f);
  }
}

TEST(KernelsTest, GcnLayerScalarMatchesNaiveReference) {
  Rng rng(77);
  const int n = 5, in = 6, out = 9;
  const Matrix x = Matrix::Randn(n, in, 1.0, rng);
  const Matrix ax = Matrix::Randn(n, in, 1.0, rng);
  const Matrix w_self = Matrix::Randn(in, out, 1.0, rng);
  const Matrix w_neigh = Matrix::Randn(in, out, 1.0, rng);
  const Matrix bias = Matrix::Randn(1, out, 1.0, rng);

  const TensorF32 xf = TensorF32::FromMatrix(x);
  const TensorF32 axf = TensorF32::FromMatrix(ax);
  const TensorF32 wsf = TensorF32::FromMatrix(w_self);
  const TensorF32 wnf = TensorF32::FromMatrix(w_neigh);
  const TensorF32 bf = TensorF32::FromMatrix(bias);
  std::vector<float> y(n * out);
  ScalarOps().gcn_layer(n, in, out, xf.data(), axf.data(), wsf.data(),
                        wnf.data(), bf.data(), nullptr, nullptr, Act::kRelu,
                        y.data());

  Matrix want = x.MatMul(w_self) + ax.MatMul(w_neigh);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < out; ++c) {
      const double z = want.At(r, c) + bias.At(0, c);
      const double relu = z > 0.0 ? z : 0.0;
      EXPECT_NEAR(y[static_cast<std::size_t>(r) * out + c], relu, 1e-4)
          << r << "," << c;
    }
}

}  // namespace
}  // namespace infer
}  // namespace after
