/// Chaos integration test: drives the full load -> train -> evaluate
/// pipeline under every fault class of the fault-injection harness and
/// asserts graceful degradation — finite metrics, non-zero
/// recommendations, diagnosed failures, and never an abort.

#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "baselines/nearest_recommender.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset_io.h"
#include "testing/fault_injection.h"

namespace after {
namespace {

namespace fs = std::filesystem;

Dataset SmallTimik(uint64_t seed = 7) {
  DatasetConfig config;
  config.num_users = 16;
  config.num_steps = 8;
  config.num_sessions = 2;
  config.room_side = 6.0;
  config.seed = seed;
  return GenerateTimikLike(config);
}

EvalOptions SmallEval() {
  EvalOptions eval;
  eval.num_targets = 6;
  eval.beta = 0.5;
  return eval;
}

void ExpectFiniteMetrics(const EvalResult& result) {
  EXPECT_TRUE(std::isfinite(result.after_utility));
  EXPECT_TRUE(std::isfinite(result.preference_utility));
  EXPECT_TRUE(std::isfinite(result.social_presence_utility));
  EXPECT_TRUE(std::isfinite(result.view_occlusion_rate));
  EXPECT_TRUE(std::isfinite(result.avg_recommended_per_step));
  for (double v : result.per_target_after) EXPECT_TRUE(std::isfinite(v));
}

// ---- Fault class 1: corrupt persisted datasets ----------------------

TEST(ChaosTest, EveryDatasetFaultIsDiagnosedNotFatal) {
  const fs::path base =
      fs::temp_directory_path() /
      ("after_chaos_" + std::to_string(::getpid()));
  uint64_t seed = 100;
  for (testing::DatasetFileFault fault : testing::kAllDatasetFileFaults) {
    SCOPED_TRACE(testing::DatasetFileFaultName(fault));
    const fs::path dir =
        base.string() + "_" + testing::DatasetFileFaultName(fault);
    fs::remove_all(dir);
    ASSERT_TRUE(SaveDatasetChecked(SmallTimik(), dir.string()).ok());

    Rng rng(seed++);
    std::string corrupted_file;
    ASSERT_TRUE(testing::InjectDatasetFileFault(dir.string(), fault, rng,
                                                &corrupted_file)
                    .ok());

    // The strict loader must refuse the corrupted directory with a
    // diagnostic naming the offending file — and must not abort.
    const Result<Dataset> loaded = LoadDatasetChecked(dir.string());
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find(corrupted_file),
              std::string::npos)
        << "diagnostic does not name " << corrupted_file << ": "
        << loaded.status().ToString();

    // The legacy bool API degrades to false instead of dying too.
    Dataset scratch;
    EXPECT_FALSE(LoadDataset(dir.string(), &scratch));
    fs::remove_all(dir);
  }
}

// ---- Fault class 2: NaN trajectories --------------------------------

TEST(ChaosTest, NanTrajectoryEvaluatesFiniteWithCountedSkips) {
  Dataset dataset = SmallTimik();
  Rng rng(41);
  dataset.sessions.back() =
      testing::WithNanPositions(dataset.sessions.back(), 12, rng);

  NearestRecommender nearest(5);
  const Result<EvalResult> result =
      EvaluateRecommenderChecked(nearest, dataset, SmallEval());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
  EXPECT_GT(result.value().diagnostics.poisoned_steps_skipped, 0);
  EXPECT_GT(result.value().avg_recommended_per_step, 0.0);
}

// ---- Fault class 3: mid-session user churn --------------------------

TEST(ChaosTest, MidSessionUserDropEvaluatesFinite) {
  Dataset dataset = SmallTimik();
  dataset.sessions.back() = testing::WithUserDroppedMidSession(
      dataset.sessions.back(), /*user=*/3, /*drop_step=*/3);

  NearestRecommender nearest(5);
  const Result<EvalResult> result =
      EvaluateRecommenderChecked(nearest, dataset, SmallEval());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
  EXPECT_GT(result.value().avg_recommended_per_step, 0.0);
}

TEST(ChaosTest, ChurningCrowdEvaluatesFinite) {
  Dataset dataset = SmallTimik();
  XrWorld::Config world_config;
  world_config.num_users = dataset.num_users();
  world_config.num_steps = 10;
  world_config.room_side = 6.0;
  Rng rng(43);
  dataset.sessions.back() =
      testing::GenerateWorldWithChurn(world_config, 0.08, 0.3, rng);

  NearestRecommender nearest(5);
  const Result<EvalResult> result =
      EvaluateRecommenderChecked(nearest, dataset, SmallEval());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
  EXPECT_TRUE(result.value().diagnostics.clean());
  EXPECT_GT(result.value().avg_recommended_per_step, 0.0);
}

// ---- Fault class 4: recommender crash mid-evaluation ----------------

TEST(ChaosTest, CrashedRecommenderFallsBackToNearest) {
  const Dataset dataset = SmallTimik();

  NearestRecommender healthy(5);
  testing::FaultyRecommender faulty(&healthy, /*healthy_steps=*/4);
  NearestRecommender fallback(5);

  EvalOptions eval = SmallEval();
  eval.fallback = &fallback;
  const Result<EvalResult> result =
      EvaluateRecommenderChecked(faulty, dataset, eval);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
  EXPECT_GT(result.value().diagnostics.fallback_steps, 0);
  EXPECT_GT(faulty.failures_emitted(), 0);
  // The fallback keeps the recommendation stream alive.
  EXPECT_GT(result.value().avg_recommended_per_step, 0.0);
}

TEST(ChaosTest, CrashedRecommenderWithoutFallbackSkipsAndCounts) {
  const Dataset dataset = SmallTimik();
  NearestRecommender healthy(5);
  testing::FaultyRecommender faulty(&healthy, /*healthy_steps=*/2);

  const Result<EvalResult> result =
      EvaluateRecommenderChecked(faulty, dataset, SmallEval());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
  EXPECT_GT(result.value().diagnostics.failed_steps_skipped, 0);
}

// ---- Fault class 5: poisoned gradients during training --------------

TEST(ChaosTest, PoisonedUtilitiesTrainingRecoversViaRollback) {
  const Dataset clean = SmallTimik();
  Dataset poisoned = clean;
  Rng rng(44);
  // A few poisoned entries: enough for sampled training targets to hit a
  // NaN row (engaging the guard) while most rollouts stay clean.
  testing::PoisonUtilities(&poisoned, 3, rng);

  TrainOptions train;
  train.epochs = 10;
  train.targets_per_epoch = 4;
  train.seed = 7;
  train.robustness.policy = NumericalErrorPolicy::kRollbackAndHalveLr;

  PoshgnnConfig config;
  config.seed = 9;

  Poshgnn clean_model(config);
  clean_model.Train(clean, train);
  ASSERT_TRUE(clean_model.last_train_status().ok());

  Poshgnn poisoned_model(config);
  poisoned_model.Train(poisoned, train);

  // The guard engaged (NaN losses rolled back) but training finished.
  EXPECT_TRUE(poisoned_model.last_train_status().ok())
      << poisoned_model.last_train_status().ToString();
  EXPECT_GT(poisoned_model.train_rollbacks() +
                poisoned_model.train_steps_skipped(),
            0);

  // Both models evaluate on the clean dataset; the recovered model's
  // Table 2 metric stays within 5% of the clean run's.
  const Result<EvalResult> clean_eval =
      EvaluateRecommenderChecked(clean_model, clean, SmallEval());
  const Result<EvalResult> poisoned_eval =
      EvaluateRecommenderChecked(poisoned_model, clean, SmallEval());
  ASSERT_TRUE(clean_eval.ok());
  ASSERT_TRUE(poisoned_eval.ok());
  ExpectFiniteMetrics(poisoned_eval.value());

  const double clean_utility = clean_eval.value().after_utility;
  const double recovered_utility = poisoned_eval.value().after_utility;
  ASSERT_GT(clean_utility, 0.0);
  EXPECT_LE(std::abs(recovered_utility - clean_utility),
            0.05 * std::abs(clean_utility))
      << "clean=" << clean_utility << " recovered=" << recovered_utility;
}

TEST(ChaosTest, AllNanTrainingSessionIsSkippedNotFatal) {
  Dataset dataset = SmallTimik();
  Rng rng(45);
  testing::AppendPoisonedTrainingSession(&dataset, rng);

  TrainOptions train;
  train.epochs = 2;
  train.targets_per_epoch = 2;
  train.seed = 11;

  PoshgnnConfig config;
  config.seed = 13;
  Poshgnn model(config);
  model.Train(dataset, train);
  EXPECT_TRUE(model.last_train_status().ok())
      << model.last_train_status().ToString();

  const Result<EvalResult> result =
      EvaluateRecommenderChecked(model, dataset, SmallEval());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteMetrics(result.value());
}

TEST(ChaosTest, UntrainableDatasetReportsInvalidData) {
  Dataset empty;
  TrainOptions train;
  train.epochs = 1;
  PoshgnnConfig config;
  Poshgnn model(config);
  model.Train(empty, train);  // Must not abort.
  EXPECT_EQ(model.last_train_status().code(), StatusCode::kInvalidData);
}

}  // namespace
}  // namespace after
