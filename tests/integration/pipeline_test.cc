// End-to-end integration tests: dataset -> training -> evaluation across
// modules, checking the qualitative relationships the paper's evaluation
// depends on (not exact numbers).

#include <gtest/gtest.h>

#include "baselines/nearest_recommender.h"
#include "baselines/original_recommender.h"
#include "baselines/random_recommender.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/stats.h"

namespace after {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 50;
    config.num_steps = 31;
    config.num_sessions = 2;
    config.room_side = 8.0;
    config.seed = 71;
    dataset_ = new Dataset(GenerateTimikLike(config));

    PoshgnnConfig model_config;
    model_config.max_recommendations = 8;
    model_config.seed = 72;
    model_ = new Poshgnn(model_config);
    TrainOptions train;
    train.epochs = 10;
    train.targets_per_epoch = 4;
    train.seed = 73;
    model_->Train(*dataset_, train);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
  }

  static EvalOptions Eval() {
    EvalOptions eval;
    eval.num_targets = 8;
    eval.target_seed = 74;
    return eval;
  }

  static Dataset* dataset_;
  static Poshgnn* model_;
};

Dataset* PipelineTest::dataset_ = nullptr;
Poshgnn* PipelineTest::model_ = nullptr;

TEST_F(PipelineTest, TrainedPoshgnnBeatsRandom) {
  RandomRecommender random_baseline(8, 75);
  const EvalResult ours = EvaluateRecommender(*model_, *dataset_, Eval());
  const EvalResult theirs =
      EvaluateRecommender(random_baseline, *dataset_, Eval());
  EXPECT_GT(ours.after_utility, theirs.after_utility);
}

TEST_F(PipelineTest, TrainedPoshgnnBeatsNearest) {
  NearestRecommender nearest(8);
  const EvalResult ours = EvaluateRecommender(*model_, *dataset_, Eval());
  const EvalResult theirs =
      EvaluateRecommender(nearest, *dataset_, Eval());
  EXPECT_GT(ours.after_utility, theirs.after_utility);
}

TEST_F(PipelineTest, BudgetedSetBeatsRenderAllOnOcclusion) {
  OriginalRecommender render_all;
  const EvalResult ours = EvaluateRecommender(*model_, *dataset_, Eval());
  const EvalResult all =
      EvaluateRecommender(render_all, *dataset_, Eval());
  EXPECT_LT(ours.view_occlusion_rate, all.view_occlusion_rate);
}

TEST_F(PipelineTest, AfterIsWeightedSumOfComponents) {
  const EvalResult r = EvaluateRecommender(*model_, *dataset_, Eval());
  EXPECT_NEAR(r.after_utility,
              0.5 * r.preference_utility + 0.5 * r.social_presence_utility,
              1e-9);
}

TEST_F(PipelineTest, EvaluationDeterministicForFixedModel) {
  const EvalResult a = EvaluateRecommender(*model_, *dataset_, Eval());
  const EvalResult b = EvaluateRecommender(*model_, *dataset_, Eval());
  EXPECT_DOUBLE_EQ(a.after_utility, b.after_utility);
  EXPECT_DOUBLE_EQ(a.view_occlusion_rate, b.view_occlusion_rate);
}

TEST_F(PipelineTest, PicksAreBetterThanPopulationAverage) {
  // The trained model's chosen users must have above-average preference.
  const EvalResult r = EvaluateRecommender(*model_, *dataset_, Eval());
  // preference_utility / (steps * budget) would be exact if everything
  // were visible; require it beats what uniformly random *visible* picks
  // earn per visible slot, approximated by the random baseline.
  RandomRecommender random_baseline(8, 76);
  const EvalResult rnd =
      EvaluateRecommender(random_baseline, *dataset_, Eval());
  EXPECT_GT(r.preference_utility, rnd.preference_utility);
}

}  // namespace
}  // namespace after
