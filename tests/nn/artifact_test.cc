#include "nn/artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "nn/serialize.h"

namespace after {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ModelArtifact MakeArtifact(uint64_t seed = 11) {
  Rng rng(seed);
  ModelArtifact artifact;
  artifact.kind = "POSHGNN";
  artifact.metadata["hidden_dim"] = "8";
  artifact.metadata["use_mia"] = "1";
  artifact.metadata["beta"] = "0.25";
  artifact.metadata["note"] = "metadata values may contain spaces";
  artifact.parameters.push_back(Matrix::Randn(4, 8, 0.3, rng));
  artifact.parameters.push_back(Matrix::Randn(8, 1, 0.3, rng));
  artifact.parameters.push_back(Matrix::Randn(1, 8, 0.3, rng));
  return artifact;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ModelArtifactTest, RoundTripIsBitExact) {
  const std::string path = TempPath("roundtrip.after");
  const ModelArtifact original = MakeArtifact();
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = ModelArtifact::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ModelArtifact& artifact = loaded.value();
  EXPECT_EQ(artifact.kind, "POSHGNN");
  EXPECT_EQ(artifact.metadata, original.metadata);
  ASSERT_EQ(artifact.parameters.size(), original.parameters.size());
  for (size_t i = 0; i < artifact.parameters.size(); ++i) {
    const Matrix& a = artifact.parameters[i];
    const Matrix& b = original.parameters[i];
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (int r = 0; r < a.rows(); ++r)
      for (int c = 0; c < a.cols(); ++c)
        EXPECT_EQ(a.At(r, c), b.At(r, c)) << "param " << i;
  }
}

TEST(ModelArtifactTest, FieldAccessors) {
  const ModelArtifact artifact = MakeArtifact();
  EXPECT_EQ(artifact.Field("note"), "metadata values may contain spaces");
  EXPECT_EQ(artifact.Field("absent"), "");
  EXPECT_EQ(artifact.FieldInt("hidden_dim", -1), 8);
  EXPECT_EQ(artifact.FieldInt("absent", -1), -1);
  EXPECT_EQ(artifact.FieldInt("note", -1), -1);  // unparsable
  EXPECT_DOUBLE_EQ(artifact.FieldDouble("beta", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(artifact.FieldDouble("absent", 0.5), 0.5);
}

TEST(ModelArtifactTest, CorruptedChecksumIsRejected) {
  const std::string path = TempPath("corrupt.after");
  ASSERT_TRUE(MakeArtifact().Save(path).ok());
  // Flip one digit of one parameter value: the header checksum no
  // longer matches the payload.
  std::string content = ReadFile(path);
  const size_t pos = content.rfind('7');
  ASSERT_NE(pos, std::string::npos);
  content[pos] = '3';
  WriteFile(path, content);

  auto loaded = ModelArtifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST(ModelArtifactTest, ForgedChecksumFailsOnMalformedPayload) {
  const std::string path = TempPath("truncated.after");
  ASSERT_TRUE(MakeArtifact().Save(path).ok());
  // Truncate the payload AND rewrite the checksum to match the
  // truncated bytes: checksum passes, block parsing must still reject.
  std::string content = ReadFile(path);
  const size_t params_pos = content.find("after-params");
  ASSERT_NE(params_pos, std::string::npos);
  std::string payload = content.substr(params_pos);
  payload.resize(payload.size() / 2);
  std::ostringstream checksum;
  checksum << std::hex;
  checksum.width(16);
  checksum.fill('0');
  checksum << Fnv1a64(payload);
  const size_t checksum_pos = content.find("checksum ");
  ASSERT_NE(checksum_pos, std::string::npos);
  std::string forged = content.substr(0, checksum_pos);
  forged += "checksum " + checksum.str() + "\n" + payload;
  WriteFile(path, forged);

  auto loaded = ModelArtifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
}

TEST(ModelArtifactTest, UnsupportedVersionIsRejected) {
  const std::string path = TempPath("version.after");
  ASSERT_TRUE(MakeArtifact().Save(path).ok());
  std::string content = ReadFile(path);
  content.replace(content.find("after-model-artifact 1"),
                  sizeof("after-model-artifact 1") - 1,
                  "after-model-artifact 2");
  WriteFile(path, content);

  auto loaded = ModelArtifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidData);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(ModelArtifactTest, MissingFileIsNotFound) {
  auto loaded = ModelArtifact::Load(TempPath("does-not-exist.after"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ModelArtifactTest, ApplyToRejectsWrongShapes) {
  const ModelArtifact artifact = MakeArtifact();

  // Count mismatch.
  std::vector<Variable> too_few = {Variable::Parameter(Matrix(4, 8))};
  EXPECT_EQ(artifact.ApplyTo(too_few).code(), StatusCode::kInvalidData);

  // Shape mismatch: parameters must be untouched on failure.
  std::vector<Variable> wrong_shape = {
      Variable::Parameter(Matrix(4, 8, 7.0)),
      Variable::Parameter(Matrix(8, 2, 7.0)),  // artifact has 8x1
      Variable::Parameter(Matrix(1, 8, 7.0)),
  };
  EXPECT_EQ(artifact.ApplyTo(wrong_shape).code(), StatusCode::kInvalidData);
  EXPECT_EQ(wrong_shape[0].value().At(0, 0), 7.0);

  // Matching shapes load bit-exactly.
  std::vector<Variable> live = {
      Variable::Parameter(Matrix(4, 8)),
      Variable::Parameter(Matrix(8, 1)),
      Variable::Parameter(Matrix(1, 8)),
  };
  ASSERT_TRUE(artifact.ApplyTo(live).ok());
  for (size_t i = 0; i < live.size(); ++i) {
    for (int r = 0; r < live[i].value().rows(); ++r)
      for (int c = 0; c < live[i].value().cols(); ++c)
        EXPECT_EQ(live[i].value().At(r, c),
                  artifact.parameters[i].At(r, c));
  }
}

TEST(ModelArtifactTest, SaveValidatesHeaderTokens) {
  ModelArtifact artifact = MakeArtifact();
  artifact.kind = "two words";
  EXPECT_EQ(artifact.Save(TempPath("bad.after")).code(),
            StatusCode::kInvalidData);
  artifact.kind = "POSHGNN";
  artifact.metadata["bad key"] = "x";
  EXPECT_EQ(artifact.Save(TempPath("bad.after")).code(),
            StatusCode::kInvalidData);
}

}  // namespace
}  // namespace after
