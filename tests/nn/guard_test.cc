#include "nn/guard.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/autograd.h"

namespace after {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }

/// Accumulates finite gradients (all ones) into `param` via a real tape.
double BackwardClean(const Variable& param) {
  Variable loss = Variable::Sum(param);
  loss.Backward();
  return loss.value().At(0, 0);
}

/// Accumulates NaN gradients into `param`.
double BackwardPoisoned(const Variable& param) {
  Matrix poison(param.rows(), param.cols());
  poison.Fill(kNan);
  Variable loss =
      Variable::Sum(Variable::Hadamard(param, Variable::Constant(poison)));
  loss.Backward();
  return loss.value().At(0, 0);
}

TEST(TrainingGuardTest, HealthyStepAppliesUpdate) {
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(RobustnessConfig(), &optimizer);

  const Matrix before = param.value();
  optimizer.ZeroGrad();
  const double loss = BackwardClean(param);
  EXPECT_EQ(guard.GuardedStep(loss), TrainingGuard::Outcome::kStepped);
  EXPECT_FALSE(param.value() == before);
  EXPECT_EQ(guard.steps_applied(), 1);
  EXPECT_TRUE(guard.status().ok());
}

TEST(TrainingGuardTest, SkipPolicyDropsNanLossStep) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kSkipStep;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(config, &optimizer);

  const Matrix before = param.value();
  optimizer.ZeroGrad();
  BackwardClean(param);  // Finite gradients; the loss itself is poisoned.
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kSkipped);
  EXPECT_TRUE(param.value() == before);  // Bit-exact: nothing applied.
  EXPECT_EQ(guard.steps_skipped(), 1);
  EXPECT_TRUE(guard.status().ok());
}

TEST(TrainingGuardTest, RollbackRestoresBitExactLastGoodParameters) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kRollbackAndHalveLr;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  const double base_lr = optimizer.learning_rate();
  TrainingGuard guard(config, &optimizer);

  // One healthy step establishes the last-good snapshot.
  optimizer.ZeroGrad();
  EXPECT_EQ(guard.GuardedStep(BackwardClean(param)),
            TrainingGuard::Outcome::kStepped);
  const Matrix last_good = param.value();

  // A poisoned backward pass must roll back to exactly that snapshot.
  optimizer.ZeroGrad();
  BackwardPoisoned(param);
  EXPECT_EQ(guard.GuardedStep(0.0), TrainingGuard::Outcome::kRolledBack);
  EXPECT_TRUE(param.value() == last_good);  // Bit-exact restoration.
  EXPECT_EQ(guard.rollbacks(), 1);
  EXPECT_DOUBLE_EQ(optimizer.learning_rate(), base_lr * 0.5);
  EXPECT_TRUE(guard.status().ok());
}

TEST(TrainingGuardTest, LearningRateRecoversAfterHealthyStreak) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kRollbackAndHalveLr;
  config.recovery_steps = 2;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  const double base_lr = optimizer.learning_rate();
  TrainingGuard guard(config, &optimizer);

  optimizer.ZeroGrad();
  guard.GuardedStep(BackwardClean(param));
  optimizer.ZeroGrad();
  BackwardPoisoned(param);
  guard.GuardedStep(0.0);
  EXPECT_LT(optimizer.learning_rate(), base_lr);

  for (int i = 0; i < config.recovery_steps; ++i) {
    optimizer.ZeroGrad();
    guard.GuardedStep(BackwardClean(param));
  }
  EXPECT_DOUBLE_EQ(optimizer.learning_rate(), base_lr);
}

TEST(TrainingGuardTest, FailPolicyReturnsNumericalErrorStatus) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kFail;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(config, &optimizer);

  optimizer.ZeroGrad();
  BackwardClean(param);
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kFailed);
  EXPECT_EQ(guard.status().code(), StatusCode::kNumericalError);
  // The guard latches: later calls keep failing without touching params.
  const Matrix after_fail = param.value();
  EXPECT_EQ(guard.GuardedStep(0.0), TrainingGuard::Outcome::kFailed);
  EXPECT_TRUE(param.value() == after_fail);
}

TEST(TrainingGuardTest, ConsecutiveFailureBudgetEventuallyFails) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kSkipStep;
  config.max_consecutive_failures = 2;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(config, &optimizer);

  optimizer.ZeroGrad();
  BackwardClean(param);
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kSkipped);
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kSkipped);
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kFailed);
  EXPECT_FALSE(guard.status().ok());
}

TEST(TrainingGuardTest, ExplodingGradientNormIsRejected) {
  RobustnessConfig config;
  config.policy = NumericalErrorPolicy::kSkipStep;
  config.max_grad_norm = 1e-12;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(config, &optimizer);

  const Matrix before = param.value();
  optimizer.ZeroGrad();
  const double loss = BackwardClean(param);  // Norm 2 >> 1e-12.
  EXPECT_EQ(guard.GuardedStep(loss), TrainingGuard::Outcome::kSkipped);
  EXPECT_TRUE(param.value() == before);
}

TEST(TrainingGuardTest, DisabledGuardReproducesUnguardedBehavior) {
  RobustnessConfig config;
  config.guard_training = false;
  Variable param = Variable::Parameter(Ones(2, 2));
  Adam optimizer({param});
  TrainingGuard guard(config, &optimizer);

  const Matrix before = param.value();
  optimizer.ZeroGrad();
  BackwardClean(param);
  // Even a NaN loss steps: exactly the historical behavior.
  EXPECT_EQ(guard.GuardedStep(kNan), TrainingGuard::Outcome::kStepped);
  EXPECT_FALSE(param.value() == before);
}

TEST(AllFiniteTest, DetectsNanAndInf) {
  Matrix m = Ones(2, 2);
  EXPECT_TRUE(AllFinite(m));
  m.At(1, 0) = kNan;
  EXPECT_FALSE(AllFinite(m));
  m.At(1, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(m));
}

}  // namespace
}  // namespace after
