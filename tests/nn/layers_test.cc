#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/diffusion_conv.h"
#include "nn/gcn_layer.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"

namespace after {
namespace {

/// Gradient-checks every parameter of a module against central
/// differences of a scalar readout built by `forward`.
void CheckParameterGradients(const std::vector<Variable>& parameters,
                             const std::function<Variable()>& forward,
                             double tolerance = 1e-5) {
  Variable loss = forward();
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  for (const auto& p : parameters) const_cast<Variable&>(p).ZeroGrad();
  loss.Backward();

  for (auto& p_const : parameters) {
    Variable& p = const_cast<Variable&>(p_const);
    const Matrix analytic = p.grad();
    const Matrix original = p.value();
    const Matrix numeric = NumericalGradient(
        [&](const Matrix& probe) {
          p.SetValue(probe);
          const double out = forward().value().At(0, 0);
          return out;
        },
        original);
    p.SetValue(original);
    EXPECT_TRUE(analytic.AllClose(numeric, tolerance))
        << "param grad mismatch\nanalytic: " << analytic.ToString()
        << "\nnumeric: " << numeric.ToString();
  }
}

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(3, 5, rng);
  Variable x = Variable::Constant(Matrix::Randn(7, 3, 1.0, rng));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 5);
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Variable x = Variable::Constant(Matrix(4, 3));
  const Matrix y = layer.Forward(x).value();
  const Matrix& bias = layer.Parameters()[1].value();
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(y.At(r, c), bias.At(0, c));
}

TEST(LinearTest, ParameterGradients) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  const Matrix input = Matrix::Randn(4, 3, 1.0, rng);
  CheckParameterGradients(layer.Parameters(), [&] {
    return Variable::Sum(
        Variable::Sigmoid(layer.Forward(Variable::Constant(input))));
  });
}

TEST(LinearTest, ParameterCountAndShapes) {
  Rng rng(4);
  Linear layer(6, 4, rng);
  const auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].rows(), 6);
  EXPECT_EQ(params[0].cols(), 4);
  EXPECT_EQ(params[1].rows(), 1);
  EXPECT_EQ(params[1].cols(), 4);
}

TEST(GcnLayerTest, OutputShapeAndActivation) {
  Rng rng(5);
  GcnLayer layer(4, 3, Activation::kRelu, rng);
  Variable x = Variable::Constant(Matrix::Randn(6, 4, 1.0, rng));
  Variable a = Variable::Constant(Matrix(6, 6));
  const Matrix y = layer.Forward(x, a).value();
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 3);
  for (int i = 0; i < y.size(); ++i) EXPECT_GE(y[i], 0.0);  // ReLU
}

TEST(GcnLayerTest, IsolatedNodesIgnoreNeighborTerm) {
  // With a zero adjacency, the neighbor weight must not influence output.
  Rng rng(6);
  GcnLayer layer(2, 2, Activation::kNone, rng);
  const Matrix input = Matrix::Randn(3, 2, 1.0, rng);
  Variable x = Variable::Constant(input);
  Variable zero_adj = Variable::Constant(Matrix(3, 3));
  const Matrix y = layer.Forward(x, zero_adj).value();

  // Manually: x * M1 + bias.
  const Matrix expected_linear =
      input.MatMul(layer.Parameters()[0].value());
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 2; ++c)
      EXPECT_NEAR(y.At(r, c),
                  expected_linear.At(r, c) +
                      layer.Parameters()[2].value().At(0, c),
                  1e-12);
}

TEST(GcnLayerTest, NeighborAggregationMatchesEquation1) {
  // Two connected nodes: h_i' = M1 h_i + M2 (sum of neighbors) + b.
  Rng rng(7);
  GcnLayer layer(2, 2, Activation::kNone, rng);
  Matrix input = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Matrix adj = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  const Matrix y =
      layer.Forward(Variable::Constant(input), Variable::Constant(adj))
          .value();
  const Matrix& m1 = layer.Parameters()[0].value();
  const Matrix& m2 = layer.Parameters()[1].value();
  const Matrix& b = layer.Parameters()[2].value();
  // Node 0: row0(input)*M1 + row1(input)*M2 + b.
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(y.At(0, c), m1.At(0, c) + m2.At(1, c) + b.At(0, c), 1e-12);
    EXPECT_NEAR(y.At(1, c), m1.At(1, c) + m2.At(0, c) + b.At(0, c), 1e-12);
  }
}

TEST(GcnLayerTest, ParameterGradients) {
  Rng rng(8);
  GcnLayer layer(3, 2, Activation::kSigmoid, rng);
  const Matrix input = Matrix::Randn(5, 3, 1.0, rng);
  Matrix adj(5, 5);
  adj.At(0, 1) = adj.At(1, 0) = 1.0;
  adj.At(2, 3) = adj.At(3, 2) = 1.0;
  CheckParameterGradients(layer.Parameters(), [&] {
    return Variable::Sum(layer.Forward(Variable::Constant(input),
                                       Variable::Constant(adj)));
  });
}

TEST(GruCellTest, OutputShapeAndRange) {
  Rng rng(9);
  GruCell cell(4, 6, rng);
  Variable x = Variable::Constant(Matrix::Randn(5, 4, 1.0, rng));
  Variable h = Variable::Constant(Matrix::Randn(5, 6, 1.0, rng));
  const Matrix h_new = cell.Forward(x, h).value();
  EXPECT_EQ(h_new.rows(), 5);
  EXPECT_EQ(h_new.cols(), 6);
}

TEST(GruCellTest, InterpolatesBetweenHiddenAndCandidate) {
  // GRU output is a convex combination of h and tanh candidate, so with
  // h in [-1, 1] the output must stay in [-1, 1].
  Rng rng(10);
  GruCell cell(3, 4, rng);
  Variable x = Variable::Constant(Matrix::Randn(6, 3, 2.0, rng));
  Matrix h0(6, 4);  // zeros are inside [-1, 1]
  const Matrix h1 = cell.Forward(x, Variable::Constant(h0)).value();
  for (int i = 0; i < h1.size(); ++i) {
    EXPECT_GE(h1[i], -1.0);
    EXPECT_LE(h1[i], 1.0);
  }
}

TEST(GruCellTest, ParameterGradients) {
  Rng rng(11);
  GruCell cell(2, 3, rng);
  const Matrix x = Matrix::Randn(4, 2, 1.0, rng);
  const Matrix h = Matrix::Randn(4, 3, 0.5, rng);
  CheckParameterGradients(cell.Parameters(), [&] {
    return Variable::Sum(
        cell.Forward(Variable::Constant(x), Variable::Constant(h)));
  });
}

TEST(GruCellTest, StateCarriesInformation) {
  Rng rng(12);
  GruCell cell(2, 3, rng);
  Variable x = Variable::Constant(Matrix::Randn(4, 2, 1.0, rng));
  Variable h_a = Variable::Constant(Matrix(4, 3, 0.0));
  Variable h_b = Variable::Constant(Matrix(4, 3, 0.9));
  const Matrix out_a = cell.Forward(x, h_a).value();
  const Matrix out_b = cell.Forward(x, h_b).value();
  EXPECT_FALSE(out_a.AllClose(out_b, 1e-6));
}

TEST(DiffusionConvTest, TransitionRowStochastic) {
  Matrix adj = Matrix::FromRows({{0, 1, 1}, {1, 0, 0}, {1, 0, 0}});
  const Matrix t = DiffusionConv::RandomWalkTransition(adj);
  for (int r = 0; r < 3; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < 3; ++c) row_sum += t.At(r, c);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(DiffusionConvTest, IsolatedNodeZeroRow) {
  Matrix adj(3, 3);
  adj.At(0, 1) = adj.At(1, 0) = 1.0;  // node 2 isolated
  const Matrix t = DiffusionConv::RandomWalkTransition(adj);
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t.At(2, c), 0.0);
}

TEST(DiffusionConvTest, ZeroHopsEqualsLinear) {
  Rng rng(13);
  DiffusionConv conv(3, 2, /*max_hops=*/0, rng);
  const Matrix x = Matrix::Randn(4, 3, 1.0, rng);
  const Matrix transition = Matrix::Randn(4, 4, 1.0, rng);
  const Matrix y = conv.Forward(Variable::Constant(x),
                                Variable::Constant(transition))
                       .value();
  const Matrix expected = x.MatMul(conv.Parameters()[0].value());
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c)
      EXPECT_NEAR(y.At(r, c),
                  expected.At(r, c) +
                      conv.Parameters().back().value().At(0, c),
                  1e-12);
}

TEST(DiffusionConvTest, ParameterGradients) {
  Rng rng(14);
  DiffusionConv conv(2, 2, /*max_hops=*/2, rng);
  const Matrix x = Matrix::Randn(4, 2, 1.0, rng);
  Matrix adj(4, 4);
  adj.At(0, 1) = adj.At(1, 0) = 1.0;
  adj.At(1, 2) = adj.At(2, 1) = 1.0;
  const Matrix transition = DiffusionConv::RandomWalkTransition(adj);
  CheckParameterGradients(conv.Parameters(), [&] {
    return Variable::Sum(conv.Forward(Variable::Constant(x),
                                      Variable::Constant(transition)));
  });
}

TEST(DiffusionConvTest, HopCountMatchesParameters) {
  Rng rng(15);
  DiffusionConv conv(3, 2, /*max_hops=*/3, rng);
  EXPECT_EQ(conv.Parameters().size(), 5u);  // 4 hop filters + bias
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||x - target||² — Adam should approach the target.
  Rng rng(16);
  Variable x = Variable::Parameter(Matrix::Randn(3, 3, 1.0, rng));
  const Matrix target = Matrix::Randn(3, 3, 1.0, rng);

  Adam::Options options;
  options.learning_rate = 0.05;
  Adam optimizer({x}, options);
  for (int iter = 0; iter < 400; ++iter) {
    Variable diff = x - Variable::Constant(target);
    Variable loss = Variable::Sum(Variable::Hadamard(diff, diff));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_TRUE(x.value().AllClose(target, 1e-2));
}

TEST(AdamTest, StepCountIncrements) {
  Variable x = Variable::Parameter(Matrix(1, 1, 1.0));
  Adam optimizer({x});
  Variable loss = Variable::Sum(Variable::Hadamard(x, x));
  optimizer.ZeroGrad();
  loss.Backward();
  optimizer.Step();
  optimizer.Step();
  EXPECT_EQ(optimizer.step_count(), 2);
}

TEST(AdamTest, GradientClippingBoundsUpdate) {
  // With a huge gradient and clip_norm set, the first Adam step is still
  // bounded by ~learning_rate.
  Variable x = Variable::Parameter(Matrix(1, 1, 0.0));
  Adam::Options options;
  options.learning_rate = 0.1;
  options.clip_norm = 1.0;
  Adam optimizer({x}, options);
  Variable loss = 1e6 * Variable::Sum(x);
  optimizer.ZeroGrad();
  loss.Backward();
  optimizer.Step();
  EXPECT_LE(std::abs(x.value().At(0, 0)), 0.11);
}

TEST(AdamTest, ZeroGradClearsAccumulators) {
  Variable x = Variable::Parameter(Matrix(2, 2, 1.0));
  Adam optimizer({x});
  Variable loss = Variable::Sum(x);
  loss.Backward();
  optimizer.ZeroGrad();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 0.0)));
}

}  // namespace
}  // namespace after
