#include "nn/serialize.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "nn/linear.h"

namespace after {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("after_params_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".txt"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(SerializeTest, RoundTripExactValues) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  ASSERT_TRUE(SaveParameters(path_, layer.Parameters()));

  Rng rng2(2);
  Linear other(4, 3, rng2);
  std::vector<Variable> params = other.Parameters();
  ASSERT_TRUE(LoadParameters(path_, params));
  EXPECT_TRUE(other.Parameters()[0].value().AllClose(
      layer.Parameters()[0].value(), 0.0));
  EXPECT_TRUE(other.Parameters()[1].value().AllClose(
      layer.Parameters()[1].value(), 0.0));
}

TEST_F(SerializeTest, CountMismatchFails) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  ASSERT_TRUE(SaveParameters(path_, layer.Parameters()));
  std::vector<Variable> too_few = {layer.Parameters()[0]};
  EXPECT_FALSE(LoadParameters(path_, too_few));
}

TEST_F(SerializeTest, ShapeMismatchFails) {
  Rng rng(4);
  Linear saved(2, 2, rng);
  ASSERT_TRUE(SaveParameters(path_, saved.Parameters()));
  Linear wider(2, 5, rng);
  std::vector<Variable> params = wider.Parameters();
  EXPECT_FALSE(LoadParameters(path_, params));
}

TEST_F(SerializeTest, MissingFileFails) {
  Rng rng(5);
  Linear layer(2, 2, rng);
  std::vector<Variable> params = layer.Parameters();
  EXPECT_FALSE(LoadParameters(path_ + ".nope", params));
}

TEST_F(SerializeTest, TrainedPoshgnnSurvivesRoundTrip) {
  DatasetConfig config;
  config.num_users = 25;
  config.num_steps = 12;
  config.num_sessions = 2;
  config.seed = 6;
  const Dataset dataset = GenerateTimikLike(config);

  PoshgnnConfig model_config;
  model_config.seed = 7;
  Poshgnn trained(model_config);
  TrainOptions train;
  train.epochs = 4;
  train.targets_per_epoch = 3;
  trained.Train(dataset, train);
  ASSERT_TRUE(trained.SaveWeights(path_));

  // A fresh model with different init must reproduce identical
  // recommendations after loading the weights.
  PoshgnnConfig fresh_config = model_config;
  fresh_config.seed = 999;
  Poshgnn fresh(fresh_config);
  ASSERT_TRUE(fresh.LoadWeights(path_));

  EvalOptions eval;
  eval.num_targets = 4;
  const EvalResult a = EvaluateRecommender(trained, dataset, eval);
  const EvalResult b = EvaluateRecommender(fresh, dataset, eval);
  EXPECT_DOUBLE_EQ(a.after_utility, b.after_utility);
  EXPECT_DOUBLE_EQ(a.view_occlusion_rate, b.view_occlusion_rate);
}

TEST_F(SerializeTest, ArchitectureMismatchRejected) {
  PoshgnnConfig full;
  full.seed = 8;
  Poshgnn model(full);
  ASSERT_TRUE(model.SaveWeights(path_));

  PoshgnnConfig ablated = full;
  ablated.use_lwp = false;  // fewer parameters
  Poshgnn other(ablated);
  EXPECT_FALSE(other.LoadWeights(path_));
}

TEST(Fnv1a64StreamTest, EveryChunkingMatchesTheOneShotHash) {
  // The incremental hash backs the journal's per-record checksums and
  // the artifact container's chunked verification; equivalence with the
  // one-shot hash must hold for any split of the payload.
  std::string payload;
  Rng rng(9);
  for (int i = 0; i < 257; ++i)
    payload.push_back(static_cast<char>(rng.UniformInt(256)));
  const uint64_t want = Fnv1a64(payload);
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{64}, size_t{256},
                             payload.size()}) {
    Fnv1a64Stream stream;
    for (size_t offset = 0; offset < payload.size(); offset += chunk)
      stream.Update(payload.data() + offset,
                    std::min(chunk, payload.size() - offset));
    EXPECT_EQ(stream.Digest(), want) << "chunk=" << chunk;
  }
  EXPECT_EQ(Fnv1a64Stream().Update(payload).Digest(), want);
  EXPECT_EQ(Fnv1a64Stream().Digest(), Fnv1a64(""));
}

}  // namespace
}  // namespace after
