#include "serve/batcher.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/poshgnn.h"
#include "gtest/gtest.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

std::vector<std::unique_ptr<Room>> MakeRooms(const Dataset& dataset,
                                             int count) {
  std::vector<std::unique_ptr<Room>> rooms;
  for (int r = 0; r < count; ++r) {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    options.seed = 50 + r;
    rooms.push_back(Room::Create(options, &dataset).value());
  }
  return rooms;
}

TickBatcher::Pending MakePending(int user) {
  TickBatcher::Pending pending;
  pending.request.room = 0;
  pending.request.user = user;
  pending.done =
      std::make_shared<std::function<void(const FriendResponse&)>>(
          [](const FriendResponse&) {});
  return pending;
}

TEST(TickBatcherTest, FirstEnqueueSchedulesLaterOnesPark) {
  TickBatcher batcher;
  int scheduled = 0;
  auto schedule = [&scheduled] {
    ++scheduled;
    return true;
  };
  EXPECT_EQ(batcher.Enqueue(0, MakePending(1), schedule),
            TickBatcher::Admit::kQueuedAndScheduled);
  EXPECT_EQ(batcher.Enqueue(0, MakePending(2), schedule),
            TickBatcher::Admit::kQueued);
  EXPECT_EQ(batcher.Enqueue(0, MakePending(3), schedule),
            TickBatcher::Admit::kQueued);
  EXPECT_EQ(scheduled, 1);
  EXPECT_EQ(batcher.pending(0), 3);

  // The drain takes everything in FIFO order...
  const std::vector<TickBatcher::Pending> batch = batcher.TakeBatch(0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request.user, 1);
  EXPECT_EQ(batch[2].request.user, 3);
  EXPECT_EQ(batcher.pending(0), 0);

  // ...and an empty TakeBatch releases ownership: the next Enqueue must
  // schedule a fresh drain task.
  EXPECT_TRUE(batcher.TakeBatch(0).empty());
  EXPECT_EQ(batcher.Enqueue(0, MakePending(4), schedule),
            TickBatcher::Admit::kQueuedAndScheduled);
  EXPECT_EQ(scheduled, 2);
}

TEST(TickBatcherTest, FailedScheduleRejectsAndUnparks) {
  TickBatcher batcher;
  EXPECT_EQ(batcher.Enqueue(0, MakePending(1), [] { return false; }),
            TickBatcher::Admit::kRejected);
  EXPECT_EQ(batcher.pending(0), 0);
  // A later enqueue with a healthy pool starts clean.
  EXPECT_EQ(batcher.Enqueue(0, MakePending(2), [] { return true; }),
            TickBatcher::Admit::kQueuedAndScheduled);
}

TEST(TickBatcherTest, RoomsAreIndependent) {
  TickBatcher batcher;
  auto ok = [] { return true; };
  EXPECT_EQ(batcher.Enqueue(0, MakePending(1), ok),
            TickBatcher::Admit::kQueuedAndScheduled);
  EXPECT_EQ(batcher.Enqueue(1, MakePending(2), ok),
            TickBatcher::Admit::kQueuedAndScheduled);
  EXPECT_EQ(batcher.pending(0), 1);
  EXPECT_EQ(batcher.pending(1), 1);
  EXPECT_EQ(batcher.TakeBatch(0).size(), 1u);
  EXPECT_EQ(batcher.pending(1), 1);
}

/// Thread-safe primary that blocks every inference call until Release()
/// and signals when a call has entered — lets a test park requests in a
/// *known* batch window: submit one request, wait for its drain to block
/// inside the model, pile more requests up, then release the gate.
class GatedRecommender : public Recommender {
 public:
  std::string name() const override { return "Gated"; }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override {
    Wait();
    return std::vector<bool>(context.positions->size(), false);
  }
  std::vector<std::vector<bool>> RecommendBatch(
      const std::vector<StepContext>& contexts) override {
    Wait();
    std::vector<std::vector<bool>> out;
    for (const StepContext& context : contexts)
      out.push_back(std::vector<bool>(context.positions->size(), false));
    return out;
  }
  void WaitForEntries(int count) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, count] { return entries_ >= count; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    gated_ = false;
    cv_.notify_all();
  }

 private:
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entries_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return !gated_; });
  }
  std::mutex mutex_;
  std::condition_variable cv_;
  int entries_ = 0;
  bool gated_ = true;
};

/// Factory product that forwards to one shared gate, so the server's
/// construction-time probe instance is gate-controlled too.
class GateProxy : public Recommender {
 public:
  explicit GateProxy(std::shared_ptr<GatedRecommender> gate)
      : gate_(std::move(gate)) {}
  std::string name() const override { return gate_->name(); }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override {
    return gate_->Recommend(context);
  }
  std::vector<std::vector<bool>> RecommendBatch(
      const std::vector<StepContext>& contexts) override {
    return gate_->RecommendBatch(contexts);
  }

 private:
  std::shared_ptr<GatedRecommender> gate_;
};

TEST(BatchedServerTest, QueuedRequestsCoalesceIntoOneJob) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 1;
  options.batch_requests = true;
  options.default_deadline_ms = -1.0;
  auto gate = std::make_shared<GatedRecommender>();
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [gate] { return std::make_unique<GateProxy>(gate); }, options);
  ASSERT_TRUE(server.primary_is_shared());

  std::mutex mutex;
  std::condition_variable cv;
  int done = 0;
  int ok = 0;
  const auto record = [&](const FriendResponse& response) {
    std::lock_guard<std::mutex> lock(mutex);
    if (response.status.ok()) ++ok;
    ++done;
    cv.notify_one();
  };

  // The first request's drain task blocks inside the gated model with a
  // batch of exactly one; only then pile up the second window: three
  // requests for user 5 plus one each for users 7 and 9. The single
  // worker is occupied, so all five are parked when the gate opens.
  server.Submit({.room = 0, .user = 1}, record);
  gate->WaitForEntries(1);
  for (int user : {5, 5, 5, 7, 9})
    server.Submit({.room = 0, .user = user}, record);
  gate->Release();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == 6; });
  }
  server.Shutdown();

  const ServerMetrics& m = server.metrics();
  EXPECT_EQ(ok, 6);
  // Two inference jobs for six requests: {1} and {5,5,5,7,9}, where the
  // duplicate user-5 requests collapse into one forward pass.
  EXPECT_EQ(m.batches.load(), 2);
  EXPECT_EQ(m.batched_requests.load(), 6);
  EXPECT_EQ(m.coalesced.load(), 2);
  EXPECT_EQ(m.queue_depth.load(), 0);
}

TEST(BatchedServerTest, HonorsDeadlinesAndValidatesUsersPerRequest) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 1;
  options.batch_requests = true;
  options.default_deadline_ms = -1.0;
  auto gate = std::make_shared<GatedRecommender>();
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [gate] { return std::make_unique<GateProxy>(gate); }, options);

  // Bad room is rejected synchronously, before batching.
  EXPECT_EQ(server.Handle({.room = 9, .user = 0}).status.code(),
            StatusCode::kNotFound);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Status> statuses;
  const auto record = [&](const FriendResponse& response) {
    std::lock_guard<std::mutex> lock(mutex);
    statuses.push_back(response.status);
    cv.notify_one();
  };

  // Hold the worker in a gated batch, then park one request whose 1 ms
  // budget expires in the queue and one with an out-of-range user. The
  // batch path must answer both individually before any model work.
  server.Submit({.room = 0, .user = 1}, record);
  gate->WaitForEntries(1);
  server.Submit({.room = 0, .user = 2, .deadline_ms = 1.0}, record);
  server.Submit({.room = 0, .user = 999}, record);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate->Release();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return statuses.size() == 3u; });
  }
  server.Shutdown();

  int ok = 0, timeouts = 0, invalid = 0;
  for (const Status& status : statuses) {
    if (status.ok()) ++ok;
    if (status.code() == StatusCode::kTimeout) ++timeouts;
    if (status.code() == StatusCode::kInvalidData) ++invalid;
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(invalid, 1);
  EXPECT_EQ(server.metrics().timeouts.load(), 1);
}

TEST(BatchedServerTest, FrozenPoshgnnUnderConcurrentLoad) {
  const Dataset dataset = SmallDataset(20, 4);
  PoshgnnConfig config;
  config.hidden_dim = 8;
  config.seed = 13;
  Poshgnn source(config);
  ServerOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.batch_requests = true;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 4),
      [&source] { return std::make_unique<FrozenPoshgnn>(source); },
      options);
  ASSERT_TRUE(server.primary_is_shared());

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.TickAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const int kClients = 4, kPerClient = 25;
  std::atomic<int> completions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const FriendResponse response = server.Handle(
            {.room = (c + i) % 4, .user = (7 * c + i) % 20});
        if (response.status.ok() && !response.recommended.empty())
          completions.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  ticker.join();
  server.Shutdown();

  EXPECT_EQ(completions.load(), kClients * kPerClient);
  EXPECT_EQ(server.metrics().shed.load(), 0);
  EXPECT_EQ(server.metrics().responses_ok.load(), kClients * kPerClient);
  EXPECT_EQ(server.metrics().batched_requests.load(), kClients * kPerClient);
  EXPECT_GE(server.metrics().batches.load(), 1);
  EXPECT_EQ(server.metrics().queue_depth.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace after
