#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"

#include "graph/mwis.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 24, int num_steps = 6) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 321;
  return GenerateTimikLike(config);
}

Room::Options LiveOptions(bool delta, double move_fraction = 0.25) {
  Room::Options options;
  options.mode = Room::Mode::kLive;
  options.seed = 11;
  options.delta_snapshots = delta;
  options.move_fraction = move_fraction;
  return options;
}

void ExpectPositionsBitExact(const RoomSnapshot& a, const RoomSnapshot& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  for (int u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.positions()[u].x, b.positions()[u].x) << "user " << u;
    EXPECT_EQ(a.positions()[u].y, b.positions()[u].y) << "user " << u;
  }
}

/// Every target's occlusion graph — adjacency AND edge order — must be
/// indistinguishable from a from-scratch rebuild of the same frame.
void ExpectOcclusionBitExact(const RoomSnapshot& snapshot) {
  for (int target = 0; target < snapshot.num_users(); ++target) {
    const OcclusionGraph rebuilt = BuildOcclusionGraph(
        snapshot.positions(), target, snapshot.body_radius());
    ASSERT_TRUE(snapshot.OcclusionFor(target) == rebuilt)
        << "target " << target << " tick " << snapshot.tick();
    ASSERT_EQ(snapshot.OcclusionFor(target).edges(), rebuilt.edges())
        << "target " << target << " tick " << snapshot.tick();
  }
}

TEST(DeltaTickTest, DeltaRoomTracksScratchRoomBitExactly) {
  const Dataset dataset = SmallDataset();
  auto delta_room = Room::Create(LiveOptions(true), &dataset).value();
  auto scratch_room = Room::Create(LiveOptions(false), &dataset).value();

  for (int t = 0; t < 12; ++t) {
    ASSERT_TRUE(delta_room->Tick().ok());
    ASSERT_TRUE(scratch_room->Tick().ok());
    const auto a = delta_room->snapshot();
    const auto b = scratch_room->snapshot();
    ASSERT_EQ(a->tick(), b->tick());
    ExpectPositionsBitExact(*a, *b);
    ExpectOcclusionBitExact(*a);
  }
  // The two rooms really exercised different publish paths.
  EXPECT_GT(delta_room->delta_ticks(), 0u);
  EXPECT_EQ(scratch_room->delta_ticks(), 0u);
  EXPECT_GT(scratch_room->scratch_ticks(), 0u);
}

/// Downstream decode and eval metrics must agree too: same occlusion
/// graph + same weights => same MWIS selection and selection weight.
TEST(DeltaTickTest, FuzzMotionFractionsPreserveDecodeAndMetrics) {
  const Dataset dataset = SmallDataset();
  for (const double fraction : {0.1, 0.5, 1.0}) {
    auto delta_room = Room::Create(LiveOptions(true, fraction), &dataset)
                          .value();
    auto scratch_room = Room::Create(LiveOptions(false, fraction), &dataset)
                            .value();
    for (int t = 0; t < 8; ++t) {
      ASSERT_TRUE(delta_room->Tick().ok());
      ASSERT_TRUE(scratch_room->Tick().ok());
      const auto a = delta_room->snapshot();
      const auto b = scratch_room->snapshot();
      ExpectPositionsBitExact(*a, *b);
      for (const int target : {0, 7, 23}) {
        const OcclusionGraph& ga = a->OcclusionFor(target);
        const OcclusionGraph& gb = b->OcclusionFor(target);
        ASSERT_TRUE(ga == gb) << "fraction " << fraction << " tick " << t;
        std::vector<double> weights(dataset.num_users());
        for (int w = 0; w < dataset.num_users(); ++w)
          weights[w] = dataset.preference.At(target, w);
        const MwisResult ra = GreedyMwis(ga, weights);
        const MwisResult rb = GreedyMwis(gb, weights);
        ASSERT_EQ(ra.selected, rb.selected);
        ASSERT_EQ(SelectionWeight(ga, weights, ra.selected),
                  SelectionWeight(gb, weights, rb.selected));
      }
    }
  }
}

TEST(DeltaTickTest, ChurnedUsersStayBitExact) {
  const Dataset dataset = SmallDataset();
  auto delta_room = Room::Create(LiveOptions(true), &dataset).value();
  auto scratch_room = Room::Create(LiveOptions(false), &dataset).value();

  for (int t = 0; t < 10; ++t) {
    if (t == 2 || t == 5) {
      const Vec2 spot(0.5 * t, -1.0);
      ASSERT_TRUE(delta_room->TeleportUser(3, spot).ok());
      ASSERT_TRUE(scratch_room->TeleportUser(3, spot).ok());
    }
    if (t == 4) {
      ASSERT_TRUE(delta_room->SetUserActive(9, false).ok());
      ASSERT_TRUE(scratch_room->SetUserActive(9, false).ok());
    }
    if (t == 7) {
      ASSERT_TRUE(delta_room->SetUserActive(9, true).ok());
      ASSERT_TRUE(scratch_room->SetUserActive(9, true).ok());
    }
    ASSERT_TRUE(delta_room->Tick().ok());
    ASSERT_TRUE(scratch_room->Tick().ok());
    const auto a = delta_room->snapshot();
    ExpectPositionsBitExact(*a, *scratch_room->snapshot());
    ExpectOcclusionBitExact(*a);
  }
  EXPECT_GT(delta_room->delta_ticks(), 0u);
}

TEST(DeltaTickTest, RebuildFractionGatesTheDeltaPath) {
  const Dataset dataset = SmallDataset();
  // Threshold 0: every tick exceeds it, so each publish falls back to a
  // from-scratch snapshot even with deltas enabled.
  Room::Options always_rebuild = LiveOptions(true);
  always_rebuild.delta_rebuild_fraction = 0.0;
  auto room = Room::Create(always_rebuild, &dataset).value();
  for (int t = 0; t < 5; ++t) ASSERT_TRUE(room->Tick().ok());
  EXPECT_EQ(room->delta_ticks(), 0u);
  EXPECT_GE(room->scratch_ticks(), 5u);
  EXPECT_FALSE(room->snapshot()->built_by_delta());

  // Threshold 1: nothing short of everybody moving forces a rebuild.
  Room::Options always_delta = LiveOptions(true);
  always_delta.delta_rebuild_fraction = 1.0;
  auto delta_room = Room::Create(always_delta, &dataset).value();
  for (int t = 0; t < 5; ++t) ASSERT_TRUE(delta_room->Tick().ok());
  EXPECT_EQ(delta_room->delta_ticks(), 5u);
  EXPECT_TRUE(delta_room->snapshot()->built_by_delta());
}

TEST(DeltaTickTest, MigrationRebuildsThenResumesDeltaTicking) {
  const Dataset dataset = SmallDataset();
  auto donor = Room::Create(LiveOptions(true), &dataset).value();
  for (int t = 0; t < 6; ++t) ASSERT_TRUE(donor->Tick().ok());
  ASSERT_TRUE(donor->snapshot()->built_by_delta());

  auto receiver = Room::Create(LiveOptions(true), &dataset).value();
  ASSERT_TRUE(receiver->ApplyState(donor->ExportState()).ok());
  // A migrated room must never trust caches it did not build: the
  // published snapshot is from scratch, bit-exact vs a rebuild.
  const auto migrated = receiver->snapshot();
  EXPECT_FALSE(migrated->built_by_delta());
  ExpectPositionsBitExact(*migrated, *donor->snapshot());
  ExpectOcclusionBitExact(*migrated);

  // ...and the next tick re-enters the delta path, still bit-exact.
  ASSERT_TRUE(receiver->Tick().ok());
  EXPECT_TRUE(receiver->snapshot()->built_by_delta());
  ExpectOcclusionBitExact(*receiver->snapshot());
}

TEST(DeltaTickTest, JournalFrameReplayPublishesScratchThenDelta) {
  const Dataset dataset = SmallDataset();
  auto donor = Room::Create(LiveOptions(true), &dataset).value();
  for (int t = 0; t < 4; ++t) ASSERT_TRUE(donor->Tick().ok());
  const Room::TickFrame frame = donor->CurrentTickFrame();

  auto recovered = Room::Create(LiveOptions(true), &dataset).value();
  ASSERT_TRUE(recovered->ApplyTickFrame(frame).ok());
  EXPECT_EQ(recovered->tick(), frame.tick);
  EXPECT_FALSE(recovered->snapshot()->built_by_delta());
  ExpectPositionsBitExact(*recovered->snapshot(), *donor->snapshot());
  ExpectOcclusionBitExact(*recovered->snapshot());

  ASSERT_TRUE(recovered->Tick().ok());
  EXPECT_TRUE(recovered->snapshot()->built_by_delta());
  ExpectOcclusionBitExact(*recovered->snapshot());
}

/// Transparent recommender: recommends every candidate the blocklist
/// lets through, so a response reveals exactly which prune mask the
/// server attached.
class BlocklistEcho : public Recommender {
 public:
  std::string name() const override { return "blocklist-echo"; }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::vector<bool> out(context.positions->size(), true);
    out[context.target] = false;
    if (context.blocklist != nullptr) {
      for (size_t w = 0; w < out.size(); ++w)
        if ((*context.blocklist)[w]) out[w] = false;
    }
    return out;
  }
};

std::vector<std::unique_ptr<Room>> MakeTemporalRooms(const Dataset* dataset) {
  Room::Options options = LiveOptions(true);
  options.temporal_index = true;
  std::vector<std::unique_ptr<Room>> rooms;
  rooms.push_back(Room::Create(options, dataset).value());
  return rooms;
}

std::vector<bool> ExpectedTopK(const RoomSnapshot& snapshot, int user,
                               int k) {
  std::vector<bool> expected(snapshot.num_users(), false);
  const auto& view = snapshot.temporal_view();
  EXPECT_NE(view, nullptr);
  for (int c : view->TopCandidates(user, k)) expected[c] = true;
  return expected;
}

TEST(DeltaTickTest, ServerPrunesToTemporalTopK) {
  const Dataset dataset = SmallDataset();
  constexpr int kTopK = 5;
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;  // never degrade to the fallback
  options.max_candidates = kTopK;
  RecommendationServer server(
      MakeTemporalRooms(&dataset),
      [] { return std::make_unique<BlocklistEcho>(); }, options);
  for (int t = 0; t < 5; ++t) ASSERT_TRUE(server.TickRoom(0).ok());

  const auto snapshot = server.FindRoom(0)->snapshot();
  for (const int user : {0, 5, 17}) {
    const FriendResponse response = server.Handle({.room = 0, .user = user});
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.used_fallback);
    EXPECT_EQ(response.recommended, ExpectedTopK(*snapshot, user, kTopK));
  }
  EXPECT_GT(server.metrics().pruned_requests.load(), 0);
}

TEST(DeltaTickTest, BatchedRequestsGetPerTargetPruneMasks) {
  const Dataset dataset = SmallDataset();
  constexpr int kTopK = 4;
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;
  options.batch_requests = true;
  options.max_candidates = kTopK;
  RecommendationServer server(
      MakeTemporalRooms(&dataset),
      [] { return std::make_unique<BlocklistEcho>(); }, options);
  for (int t = 0; t < 5; ++t) ASSERT_TRUE(server.TickRoom(0).ok());
  const auto snapshot = server.FindRoom(0)->snapshot();

  const std::vector<int> users = {1, 4, 9, 16, 21};
  std::mutex mutex;
  std::condition_variable cv;
  size_t done = 0;
  std::vector<FriendResponse> responses(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    server.Submit({.room = 0, .user = users[i]},
                  [&, i](const FriendResponse& response) {
                    std::lock_guard<std::mutex> lock(mutex);
                    responses[i] = response;
                    ++done;
                    cv.notify_all();
                  });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done == users.size(); });

  for (size_t i = 0; i < users.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << "user " << users[i];
    EXPECT_FALSE(responses[i].used_fallback);
    // Distinct per-target masks prove the batcher attached each
    // context's own blocklist rather than sharing one.
    EXPECT_EQ(responses[i].recommended,
              ExpectedTopK(*snapshot, users[i], kTopK))
        << "user " << users[i];
  }
}

}  // namespace
}  // namespace serve
}  // namespace after
