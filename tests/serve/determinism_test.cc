// The acceptance check for the serving runtime: a 1-thread server
// replaying a recorded session must produce, request for request, the
// exact recommendations the offline evaluator computes for the same
// session — including for a stateful recurrent primary, whose
// per-(room, user) stream instances must see the same context sequence
// the evaluator feeds it target by target.
#include <map>
#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "gtest/gtest.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

/// Delegates to a POSHGNN instance and records the raw output of every
/// Recommend() call, keyed by (session target, step order).
class RecordingRecommender : public Recommender {
 public:
  explicit RecordingRecommender(const PoshgnnConfig& config)
      : inner_(config) {}
  std::string name() const override { return "Recording"; }
  void BeginSession(int num_users, int target) override {
    current_target_ = target;
    inner_.BeginSession(num_users, target);
  }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::vector<bool> out = inner_.Recommend(context);
    recorded_[current_target_].push_back(out);
    return out;
  }
  const std::map<int, std::vector<std::vector<bool>>>& recorded() const {
    return recorded_;
  }

 private:
  Poshgnn inner_;
  int current_target_ = -1;
  std::map<int, std::vector<std::vector<bool>>> recorded_;
};

TEST(DeterminismTest, OneThreadServerMatchesOfflineEvaluator) {
  DatasetConfig config;
  config.num_users = 24;
  config.num_steps = 12;
  config.num_sessions = 2;
  config.seed = 777;
  const Dataset dataset = GenerateTimikLike(config);
  const XrWorld& world = dataset.sessions.back();
  const std::vector<int> targets = {3, 7, 11};

  // Offline pass: record the primary's raw per-step outputs.
  PoshgnnConfig model_config;  // untrained; identical seed on both sides
  RecordingRecommender recording(model_config);
  EvalOptions eval;
  eval.session = -1;
  eval.targets = targets;
  eval.beta = 0.5;
  auto offline = EvaluateRecommenderChecked(recording, dataset, eval);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  ASSERT_TRUE(offline.value().diagnostics.clean());
  for (int target : targets)
    ASSERT_EQ(recording.recorded().at(target).size(),
              static_cast<size_t>(world.num_steps()));

  // Online pass: single worker, replay room over the same session, no
  // deadline (so degradation can never kick in and mask a mismatch).
  Room::Options room_options;
  room_options.mode = Room::Mode::kReplay;
  room_options.session = -1;
  room_options.beta = eval.beta;
  std::vector<std::unique_ptr<Room>> rooms;
  rooms.push_back(Room::Create(room_options, &dataset).value());
  ServerOptions server_options;
  server_options.num_threads = 1;
  server_options.default_deadline_ms = -1.0;
  RecommendationServer server(
      std::move(rooms),
      [model_config] { return std::make_unique<Poshgnn>(model_config); },
      server_options);
  ASSERT_FALSE(server.primary_is_shared());  // stateful => per stream

  for (int t = 0; t < world.num_steps(); ++t) {
    for (int target : targets) {
      const FriendResponse response =
          server.Handle({.room = 0, .user = target});
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_EQ(response.tick, t);
      ASSERT_FALSE(response.used_fallback);
      // The server clears the requester's own slot; mirror that on the
      // recorded raw output before comparing.
      std::vector<bool> expected = recording.recorded().at(target)[t];
      expected[target] = false;
      EXPECT_EQ(response.recommended, expected)
          << "diverged at tick " << t << " for target " << target;
    }
    const Status status = server.TickRoom(0);
    if (t + 1 < world.num_steps()) {
      ASSERT_TRUE(status.ok());
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    }
  }
  EXPECT_EQ(server.metrics().total_fallbacks(), 0);
  EXPECT_EQ(server.metrics().timeouts.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace after
