#include "serve/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/journal.h"
#include "serve/net_server.h"
#include "serve/room.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_control.h"
#include "testing/fault_injection.h"

namespace after {
namespace serve {
namespace {

namespace fs = std::filesystem;

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

RoomFactory FactoryFor(const Dataset* dataset) {
  return [dataset](int r) -> Result<std::unique_ptr<Room>> {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    options.seed = 900 + r;
    return Room::Create(options, dataset);
  };
}

ServerOptions TestServerOptions() {
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;
  return options;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("durability_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string JournalPath(const std::string& dir) {
  return dir + "/journal.wal";
}

void ExpectSamePositions(const std::vector<Vec2>& want,
                         const std::vector<Vec2>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].x, got[i].x) << "user " << i;  // bit-exact, not near
    EXPECT_EQ(want[i].y, got[i].y) << "user " << i;
  }
}

JournalRecord SampleTick(int room, int tick) {
  JournalRecord record;
  record.type = JournalRecord::Type::kTick;
  record.room = room;
  record.tick = tick;
  record.positions = {{1.5, -2.25}, {0.0, 3.125}};
  record.goals = {{-4.0, 0.5}, {2.0, 2.0}};
  return record;
}

// ---------------------------------------------------------------------------
// Journal records: codec.

TEST(JournalRecordTest, AssignRoundTripsWithPrimaryAndResetFlags) {
  for (const bool primary : {false, true}) {
    for (const bool reset : {false, true}) {
      JournalRecord record;
      record.type = JournalRecord::Type::kAssign;
      record.room = 7;
      record.epoch = 41;
      record.primary = primary;
      record.reset = reset;
      auto decoded = DecodeJournalRecord(EncodeJournalRecord(record));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded.value().type, JournalRecord::Type::kAssign);
      EXPECT_EQ(decoded.value().room, 7);
      EXPECT_EQ(decoded.value().epoch, 41u);
      EXPECT_EQ(decoded.value().primary, primary);
      EXPECT_EQ(decoded.value().reset, reset);
    }
  }
}

TEST(JournalRecordTest, ReleaseAndTickRoundTrip) {
  JournalRecord release;
  release.type = JournalRecord::Type::kRelease;
  release.room = 3;
  release.epoch = 99;
  auto decoded = DecodeJournalRecord(EncodeJournalRecord(release));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, JournalRecord::Type::kRelease);
  EXPECT_EQ(decoded.value().room, 3);
  EXPECT_EQ(decoded.value().epoch, 99u);

  const JournalRecord tick = SampleTick(5, 812);
  auto tick_decoded = DecodeJournalRecord(EncodeJournalRecord(tick));
  ASSERT_TRUE(tick_decoded.ok()) << tick_decoded.status().ToString();
  EXPECT_EQ(tick_decoded.value().room, 5);
  EXPECT_EQ(tick_decoded.value().tick, 812);
  ASSERT_EQ(tick_decoded.value().positions.size(), 2u);
  EXPECT_EQ(tick_decoded.value().positions[0].x, 1.5);
  EXPECT_EQ(tick_decoded.value().positions[1].y, 3.125);
  ASSERT_EQ(tick_decoded.value().goals.size(), 2u);
  EXPECT_EQ(tick_decoded.value().goals[0].x, -4.0);
}

TEST(JournalRecordTest, TruncatedPayloadsFailDecodeAllOrNothing) {
  const std::string payload = EncodeJournalRecord(SampleTick(1, 2));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeJournalRecord(std::string_view(payload).substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(JournalRecordTest, NonBooleanFlagsAreRejected) {
  JournalRecord record;
  record.type = JournalRecord::Type::kAssign;
  std::string payload = EncodeJournalRecord(record);
  // Payload layout: u8 type | i32 room | u64 epoch | u8 primary | u8 reset.
  std::string bad_primary = payload;
  bad_primary[1 + 4 + 8] = 2;
  EXPECT_FALSE(DecodeJournalRecord(bad_primary).ok());
  std::string bad_reset = payload;
  bad_reset[1 + 4 + 8 + 1] = 7;
  EXPECT_FALSE(DecodeJournalRecord(bad_reset).ok());
}

// ---------------------------------------------------------------------------
// Journal file: append, replay, torn tails, corruption.

TEST(JournalTest, AppendedRecordsReadBackInOrder) {
  const std::string dir = ScratchDir("journal_roundtrip");
  const std::string path = JournalPath(dir);
  {
    auto journal = Journal::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (int i = 0; i < 5; ++i)
      ASSERT_TRUE(journal.value()->Append(SampleTick(2, i)).ok());
    ASSERT_TRUE(journal.value()->Sync().ok());
  }
  auto replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().truncated_bytes, 0);
  ASSERT_EQ(replay.value().records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(replay.value().records[i].tick, i);
    EXPECT_EQ(replay.value().records[i].room, 2);
  }
  // Reopening appends after the existing records, not over them.
  {
    auto journal = Journal::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(SampleTick(2, 5)).ok());
  }
  EXPECT_EQ(ReadJournal(path).value().records.size(), 6u);
}

TEST(JournalTest, EveryTornTailTruncatesToARecordBoundary) {
  const std::string dir = ScratchDir("journal_torn");
  const std::string path = JournalPath(dir);
  {
    auto journal = Journal::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(journal.value()->Append(SampleTick(0, i)).ok());
  }
  const int64_t full = static_cast<int64_t>(fs::file_size(path));
  const std::string pristine = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  // Byte offsets where each record ends (record i spans
  // boundaries[i]..boundaries[i+1]); a cut lands the replay exactly on
  // the last boundary it covers.
  std::vector<int64_t> boundaries = {
      static_cast<int64_t>(kJournalHeaderBytes)};
  for (int i = 0; i < 3; ++i)
    boundaries.push_back(
        boundaries.back() + 12 +
        static_cast<int64_t>(EncodeJournalRecord(SampleTick(0, i)).size()));
  ASSERT_EQ(boundaries.back(), full);
  // Cut the file at every possible length past the header: replay must
  // always succeed with a clean prefix of the records and account for
  // every dropped byte — the crash-mid-append contract.
  for (int64_t keep = static_cast<int64_t>(kJournalHeaderBytes); keep <= full;
       ++keep) {
    std::ofstream(path, std::ios::binary).write(pristine.data(), keep);
    size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= keep)
      ++expect_records;
    auto replay = ReadJournal(path);
    ASSERT_TRUE(replay.ok()) << "keep=" << keep << ": "
                             << replay.status().ToString();
    ASSERT_EQ(replay.value().records.size(), expect_records)
        << "keep=" << keep;
    EXPECT_EQ(replay.value().truncated_bytes,
              keep - boundaries[expect_records])
        << "keep=" << keep;
    for (size_t i = 0; i < expect_records; ++i)
      EXPECT_EQ(replay.value().records[i].tick, static_cast<int>(i))
          << "keep=" << keep;
    // The physical truncation helper lands appends back on a boundary.
    auto dropped = TruncateTornJournalTail(path);
    ASSERT_TRUE(dropped.ok()) << "keep=" << keep;
    EXPECT_EQ(dropped.value(), replay.value().truncated_bytes);
    EXPECT_EQ(ReadJournal(path).value().truncated_bytes, 0);
  }
}

TEST(JournalTest, HeaderCorruptionIsDataLossButHeaderTruncationIsTorn) {
  const std::string dir = ScratchDir("journal_header");
  const std::string path = JournalPath(dir);
  {
    auto journal = Journal::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(SampleTick(0, 0)).ok());
  }
  // A flipped magic byte is unrecoverable: without the magic the file
  // cannot be trusted to be a journal at all.
  std::fstream flip(path, std::ios::in | std::ios::out | std::ios::binary);
  flip.seekp(0);
  flip.put('X');
  flip.close();
  EXPECT_EQ(ReadJournal(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(TruncateTornJournalTail(path).status().code(),
            StatusCode::kDataLoss);

  // A crash while the header itself was being written is just the torn
  // tail of an empty journal, not data loss.
  ASSERT_TRUE(testing::TruncateFileTail(path, 4).ok());
  auto replay = ReadJournal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().truncated_bytes, 4);

  EXPECT_EQ(ReadJournal(dir + "/nope.wal").status().code(),
            StatusCode::kNotFound);
}

TEST(JournalTest, ByteFlipFuzzReplaysAPrefixOrReportsDataLoss) {
  const std::string dir = ScratchDir("journal_fuzz");
  const std::string path = JournalPath(dir);
  std::vector<std::string> encoded;
  {
    auto journal = Journal::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 6; ++i) {
      const JournalRecord record = SampleTick(1, i);
      encoded.push_back(EncodeJournalRecord(record));
      ASSERT_TRUE(journal.value()->Append(record).ok());
    }
  }
  const std::string pristine = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  Rng rng(77);
  int data_loss = 0, truncated = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::ofstream(path, std::ios::binary)
        .write(pristine.data(), static_cast<int64_t>(pristine.size()));
    ASSERT_TRUE(testing::FlipRandomByte(path, rng).ok());
    auto replay = ReadJournal(path);
    if (!replay.ok()) {
      // Only a corrupt header may be unrecoverable.
      EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
      ++data_loss;
      continue;
    }
    // Whatever survived must be an exact prefix of what was written:
    // a checksum-caught flip drops that record and everything after it,
    // never yields an altered record.
    ASSERT_LE(replay.value().records.size(), encoded.size());
    for (size_t i = 0; i < replay.value().records.size(); ++i)
      EXPECT_EQ(EncodeJournalRecord(replay.value().records[i]), encoded[i])
          << "trial=" << trial << " record=" << i;
    if (replay.value().records.size() < encoded.size()) ++truncated;
  }
  EXPECT_GT(data_loss, 0);  // some flips land in the 8-byte header
  EXPECT_GT(truncated, 0);  // most land in records and truncate there
}

// ---------------------------------------------------------------------------
// Checkpoints.

TEST(CheckpointTest, RoundTripRestoresTheRoomBitExact) {
  const std::string dir = ScratchDir("ckpt_roundtrip");
  const Dataset dataset = SmallDataset();
  const auto factory = FactoryFor(&dataset);
  auto donor = factory(3).value();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(donor->Tick().ok());

  RoomCheckpoint checkpoint;
  checkpoint.room = 3;
  checkpoint.epoch = 12;
  checkpoint.primary = true;
  checkpoint.tick = donor->tick();
  checkpoint.state = donor->ExportState();
  ASSERT_TRUE(WriteRoomCheckpoint(dir, checkpoint).ok());

  auto loaded = LoadRoomCheckpoint(CheckpointPath(dir, 3));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().room, 3);
  EXPECT_EQ(loaded.value().epoch, 12u);
  EXPECT_TRUE(loaded.value().primary);
  EXPECT_EQ(loaded.value().tick, 5);

  auto receiver = factory(3).value();
  ASSERT_TRUE(receiver->ApplyState(loaded.value().state).ok());
  EXPECT_EQ(receiver->tick(), donor->tick());
  ExpectSamePositions(donor->snapshot()->positions(),
                      receiver->snapshot()->positions());
}

TEST(CheckpointTest, MissingIsNotFoundAndCorruptIsDataLoss) {
  const std::string dir = ScratchDir("ckpt_corrupt");
  EXPECT_EQ(LoadRoomCheckpoint(CheckpointPath(dir, 9)).status().code(),
            StatusCode::kNotFound);

  const Dataset dataset = SmallDataset();
  auto room = FactoryFor(&dataset)(0).value();
  RoomCheckpoint checkpoint;
  checkpoint.room = 0;
  checkpoint.epoch = 1;
  checkpoint.tick = 0;
  checkpoint.state = room->ExportState();
  ASSERT_TRUE(WriteRoomCheckpoint(dir, checkpoint).ok());

  // Every single-byte flip must be caught by the container checksum (or
  // the structural validation behind it) and surface as kDataLoss —
  // never crash, never hand back silently different state.
  const std::string path = CheckpointPath(dir, 0);
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    ASSERT_TRUE(WriteRoomCheckpoint(dir, checkpoint).ok());
    ASSERT_TRUE(testing::FlipRandomByte(path, rng).ok());
    auto loaded = LoadRoomCheckpoint(path);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << loaded.status().ToString();
    } else {
      // A flip that survives the checksum can only be a same-value
      // rewrite; the state must be untouched.
      EXPECT_EQ(loaded.value().state, checkpoint.state) << "trial=" << trial;
    }
  }
}

TEST(CheckpointTest, ListingSkipsTempLeftoversOfInterruptedWrites) {
  const std::string dir = ScratchDir("ckpt_listing");
  const Dataset dataset = SmallDataset();
  auto room = FactoryFor(&dataset)(4).value();
  RoomCheckpoint checkpoint;
  checkpoint.room = 4;
  checkpoint.epoch = 1;
  checkpoint.state = room->ExportState();
  ASSERT_TRUE(WriteRoomCheckpoint(dir, checkpoint).ok());
  // A crash mid-write leaves a ".tmp" orphan; it must never be mistaken
  // for a checkpoint.
  std::ofstream(dir + "/room-7.ckpt.tmp") << "half-written garbage";
  std::ofstream(dir + "/notes.txt") << "unrelated";
  const std::vector<int> rooms = ListCheckpointRooms(dir);
  ASSERT_EQ(rooms.size(), 1u);
  EXPECT_EQ(rooms[0], 4);
}

// ---------------------------------------------------------------------------
// DurabilityManager + ShardControl: the full crash/recover cycle.

/// One durable partitioned shard, restartable in place: the shape of
/// tools/serve_shard --partitioned --durable_dir, addressable from a
/// unit test. Destroying it and constructing a new one over the same
/// directory is the crash + cold restart.
struct DurableShard {
  DurableShard(const Dataset& dataset, const std::string& dir,
               int checkpoint_every_ticks = 256)
      : server({}, [] { return std::make_unique<NearestRecommender>(5); },
               TestServerOptions()),
        control(&server, FactoryFor(&dataset)) {
    DurabilityManager::Options options;
    options.dir = dir;
    options.checkpoint_every_ticks = checkpoint_every_ticks;
    auto opened = DurabilityManager::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    durability = std::move(opened).value();
    durability->Attach(&server);
    server.set_durability(durability.get());
    control.set_durability(durability.get());
  }

  RecommendationServer server;
  ShardControl control;
  std::unique_ptr<DurabilityManager> durability;
};

TEST(DurabilityManagerTest, FreshRoomRecoversBitExactFromJournalReplay) {
  const std::string dir = ScratchDir("recover_replay");
  const Dataset dataset = SmallDataset();
  std::string expected_state;
  {
    // Cadence high enough that no tick-path checkpoint fires: recovery
    // must rebuild from the factory and replay every journaled tick.
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/1000);
    ASSERT_TRUE(shard.control.Assign(3, 7, "", /*primary=*/true).ok());
    for (int i = 0; i < 6; ++i) shard.server.TickAll();
    expected_state = shard.server.FindRoom(3)->ExportState();
  }  // crash

  DurableShard restarted(dataset, dir, /*checkpoint_every_ticks=*/1000);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].room, 3);
  EXPECT_EQ(report.value()[0].epoch, 7u);
  EXPECT_TRUE(report.value()[0].primary);
  EXPECT_EQ(report.value()[0].tick, 6);

  EXPECT_TRUE(restarted.control.Owns(3));
  EXPECT_EQ(restarted.control.EpochFor(3), 7u);
  auto room = restarted.server.FindRoom(3);
  ASSERT_NE(room, nullptr);
  EXPECT_EQ(room->ExportState(), expected_state);  // tick + positions +
                                                   // goals + window
  EXPECT_GE(restarted.server.metrics().rooms_recovered.load(), 1);
  EXPECT_GE(restarted.server.metrics().records_replayed.load(), 6);

  // Idempotent: a router's kRoomRecover query after boot-time recovery
  // answers the same report without redoing the work.
  auto again = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 1u);
}

TEST(DurabilityManagerTest, CheckpointPlusTailReplayRecoversBitExact) {
  const std::string dir = ScratchDir("recover_ckpt");
  const Dataset dataset = SmallDataset();
  std::string expected_state;
  {
    // Cadence 4 over 10 ticks: recovery starts from the tick-8
    // checkpoint and replays the 2-tick journal tail on top.
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/4);
    ASSERT_TRUE(shard.control.Assign(0, 2, "", /*primary=*/true).ok());
    for (int i = 0; i < 10; ++i) shard.server.TickAll();
    expected_state = shard.server.FindRoom(0)->ExportState();
  }
  ASSERT_EQ(ListCheckpointRooms(dir).size(), 1u);

  DurableShard restarted(dataset, dir);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].tick, 10);
  EXPECT_EQ(restarted.server.FindRoom(0)->ExportState(), expected_state);
}

TEST(DurabilityManagerTest, MigratedInStateIsCheckpointedOnArrival) {
  const std::string dir = ScratchDir("recover_migration");
  const Dataset dataset = SmallDataset();
  // A donor (not durable) hands a ticked room over; the receiving shard
  // must be able to recover it even though it never ticked it itself —
  // the migration blob exists nowhere else durable.
  auto donor = FactoryFor(&dataset)(5).value();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(donor->Tick().ok());
  const std::string blob = donor->ExportState();
  {
    DurableShard shard(dataset, dir);
    ASSERT_TRUE(shard.control.Assign(5, 9, blob, /*primary=*/true).ok());
  }  // crash before any tick

  DurableShard restarted(dataset, dir);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].tick, 4);
  EXPECT_EQ(restarted.server.FindRoom(5)->ExportState(), blob);
}

TEST(DurabilityManagerTest, ReleasedRoomsStayDead) {
  const std::string dir = ScratchDir("recover_release");
  const Dataset dataset = SmallDataset();
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/2);
    ASSERT_TRUE(shard.control.Assign(1, 1, "", /*primary=*/true).ok());
    for (int i = 0; i < 5; ++i) shard.server.TickAll();
    ASSERT_TRUE(shard.control.Release(1, 2).ok());
  }
  // The release deleted the checkpoint and journaled the revocation:
  // restart recovers nothing — the router moved this room elsewhere and
  // resurrecting it here would split-brain the fleet.
  EXPECT_TRUE(ListCheckpointRooms(dir).empty());
  DurableShard restarted(dataset, dir);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().empty());
  EXPECT_FALSE(restarted.control.Owns(1));
}

TEST(DurabilityManagerTest, CrashBetweenReleaseJournalAndCheckpointDelete) {
  // The WAL-ordering window: the release record is journaled + synced,
  // then the process dies BEFORE fs::remove(checkpoint). The orphan
  // checkpoint must not resurrect the room.
  const std::string dir = ScratchDir("recover_orphan_ckpt");
  const Dataset dataset = SmallDataset();
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/2);
    ASSERT_TRUE(shard.control.Assign(6, 3, "", /*primary=*/true).ok());
    for (int i = 0; i < 4; ++i) shard.server.TickAll();
    // Reproduce the crash window by hand: journal the release record the
    // way RecordRelease does, but "die" before the checkpoint delete.
    JournalRecord release;
    release.type = JournalRecord::Type::kRelease;
    release.room = 6;
    release.epoch = 4;
    ASSERT_TRUE(shard.durability->journal().Append(release).ok());
  }
  ASSERT_EQ(ListCheckpointRooms(dir).size(), 1u);  // the orphan survives

  DurableShard restarted(dataset, dir);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().empty()) << "orphan checkpoint resurrected";
  EXPECT_FALSE(restarted.control.Owns(6));
}

TEST(DurabilityManagerTest, TornJournalTailRecoversThePrefix) {
  const std::string dir = ScratchDir("recover_torn");
  const Dataset dataset = SmallDataset();
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/1000);
    ASSERT_TRUE(shard.control.Assign(2, 5, "", /*primary=*/true).ok());
    for (int i = 0; i < 6; ++i) shard.server.TickAll();
  }
  // Crash mid-append: chop 3 bytes off the final tick record.
  const std::string journal = JournalPath(dir);
  const int64_t size = static_cast<int64_t>(fs::file_size(journal));
  ASSERT_TRUE(testing::TruncateFileTail(journal, size - 3).ok());

  DurableShard restarted(dataset, dir, /*checkpoint_every_ticks=*/1000);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].tick, 5);  // the torn 6th tick is gone

  // The recovered replica equals a pristine replica at tick 5 — the
  // fleet's bit-exactness invariant, minus only the torn tick.
  auto expected = FactoryFor(&dataset)(2).value();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(expected->Tick().ok());
  EXPECT_EQ(restarted.server.FindRoom(2)->ExportState(),
            expected->ExportState());
}

TEST(DurabilityManagerTest, CorruptJournalHeaderIsDataLossNotACrash) {
  const std::string dir = ScratchDir("recover_bad_header");
  const Dataset dataset = SmallDataset();
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/2);
    ASSERT_TRUE(shard.control.Assign(4, 1, "", /*primary=*/true).ok());
    for (int i = 0; i < 4; ++i) shard.server.TickAll();
  }
  std::fstream flip(JournalPath(dir),
                    std::ios::in | std::ios::out | std::ios::binary);
  flip.seekp(0);
  flip.put('X');
  flip.close();

  // Open survives (the corrupt journal is moved aside for post-mortem),
  // and recovery comes back empty: without the ownership ledger the
  // orphaned checkpoint cannot be trusted — counted as data loss, and
  // the router will re-grant the room fresh.
  DurableShard restarted(dataset, dir);
  EXPECT_TRUE(fs::exists(JournalPath(dir) + ".corrupt"));
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().empty());
  EXPECT_GE(restarted.server.metrics().data_loss_rooms.load(), 1);
}

TEST(DurabilityManagerTest, CorruptCheckpointFallsBackToFullReplay) {
  const std::string dir = ScratchDir("recover_bad_ckpt");
  const Dataset dataset = SmallDataset();
  std::string expected_state;
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/3);
    ASSERT_TRUE(shard.control.Assign(8, 2, "", /*primary=*/true).ok());
    for (int i = 0; i < 7; ++i) shard.server.TickAll();
    expected_state = shard.server.FindRoom(8)->ExportState();
  }
  // Rot the checkpoint. The journal still holds every tick since the
  // (reset) assign, so recovery degrades to factory + full replay and
  // still lands bit-exact.
  Rng rng(5);
  ASSERT_TRUE(
      testing::FlipRandomByte(CheckpointPath(dir, 8), rng).ok());

  DurableShard restarted(dataset, dir, /*checkpoint_every_ticks=*/3);
  auto report = restarted.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].tick, 7);
  EXPECT_EQ(restarted.server.FindRoom(8)->ExportState(), expected_state);
}

TEST(DurabilityManagerTest, RecoveryAfterRecoveryStillFoldsCorrectly) {
  // Crash, recover, tick a bit, crash again: the second recovery folds
  // the first recovery's re-journaled assign + fresh checkpoint with the
  // new ticks. This is the double-crash trap a naive reset flag fails.
  const std::string dir = ScratchDir("recover_twice");
  const Dataset dataset = SmallDataset();
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/1000);
    ASSERT_TRUE(shard.control.Assign(0, 4, "", /*primary=*/true).ok());
    for (int i = 0; i < 3; ++i) shard.server.TickAll();
  }
  std::string expected_state;
  {
    DurableShard middle(dataset, dir, /*checkpoint_every_ticks=*/1000);
    auto report = middle.control.RecoverFromDurable();
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.value().size(), 1u);
    for (int i = 0; i < 4; ++i) middle.server.TickAll();
    expected_state = middle.server.FindRoom(0)->ExportState();
  }
  DurableShard last(dataset, dir, /*checkpoint_every_ticks=*/1000);
  auto report = last.control.RecoverFromDurable();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().size(), 1u);
  EXPECT_EQ(report.value()[0].tick, 7);
  EXPECT_EQ(last.server.FindRoom(0)->ExportState(), expected_state);
}

TEST(DurabilityManagerTest, FuzzedDurableDirNeverCrashesRecovery) {
  // The blanket robustness sweep: corrupt either durable file with
  // either fault, every trial from a pristine copy. Recovery must never
  // crash and never fabricate state — each report entry is either
  // bit-exact with some tick prefix of the original run or absent.
  const std::string dir = ScratchDir("recover_fuzz");
  const Dataset dataset = SmallDataset();
  std::vector<std::string> states_by_tick;  // ExportState per tick count
  {
    auto oracle = FactoryFor(&dataset)(1).value();
    states_by_tick.push_back(oracle->ExportState());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(oracle->Tick().ok());
      states_by_tick.push_back(oracle->ExportState());
    }
  }
  {
    DurableShard shard(dataset, dir, /*checkpoint_every_ticks=*/3);
    ASSERT_TRUE(shard.control.Assign(1, 6, "", /*primary=*/true).ok());
    for (int i = 0; i < 6; ++i) shard.server.TickAll();
  }
  const std::string scratch = ScratchDir("recover_fuzz_scratch");
  Rng rng(123);
  int recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    fs::remove_all(scratch);
    fs::copy(dir, scratch, fs::copy_options::recursive);
    std::vector<std::string> victims;
    for (const auto& entry : fs::directory_iterator(scratch))
      victims.push_back(entry.path().string());
    const std::string& victim =
        victims[static_cast<size_t>(rng.UniformInt(
            static_cast<int>(victims.size())))];
    if (rng.UniformInt(2) == 0) {
      ASSERT_TRUE(testing::FlipRandomByte(victim, rng).ok());
    } else {
      const int64_t size = static_cast<int64_t>(fs::file_size(victim));
      ASSERT_TRUE(
          testing::TruncateFileTail(victim, rng.UniformInt(size) ).ok());
    }
    DurableShard shard(dataset, scratch, /*checkpoint_every_ticks=*/3);
    auto report = shard.control.RecoverFromDurable();
    ASSERT_TRUE(report.ok()) << "trial=" << trial << ": "
                             << report.status().ToString();
    // An empty report (e.g. the journal header took the flip) is a
    // legitimate outcome — the room restarts fresh when re-granted.
    if (report.value().empty()) continue;
    ++recovered;
    ASSERT_EQ(report.value().size(), 1u);
    const int tick = report.value()[0].tick;
    ASSERT_GE(tick, 0);
    ASSERT_LT(tick, static_cast<int>(states_by_tick.size()));
    EXPECT_EQ(shard.server.FindRoom(1)->ExportState(), states_by_tick[tick])
        << "trial=" << trial << " tick=" << tick;
  }
  EXPECT_GT(recovered, 0);
}

// ---------------------------------------------------------------------------
// Router-coordinated cold restart over real TCP shards.

struct DurablePartitionShard {
  DurablePartitionShard(const Dataset& dataset, const std::string& dir)
      : shard(dataset, dir) {
    net = std::make_unique<NetServer>(NetServer::HandlerFor(&shard.server),
                                      NetServerOptions{});
    net->set_room_control(NetServer::ControlFor(&shard.control));
    const Status started = net->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~DurablePartitionShard() { net->Shutdown(); }

  BackendAddress address() const { return {"127.0.0.1", net->port()}; }

  DurableShard shard;
  std::unique_ptr<NetServer> net;
};

TEST(RecoverPartitionTest, ColdRestartReconcilesAndServesBitExact) {
  const Dataset dataset = SmallDataset();
  const int kShards = 3, kRooms = 6;
  std::vector<std::string> dirs;
  for (int s = 0; s < kShards; ++s)
    dirs.push_back(ScratchDir("fleet_shard" + std::to_string(s)));

  std::unordered_map<int, std::string> expected;  // room -> primary state
  {
    std::vector<std::unique_ptr<DurablePartitionShard>> shards;
    std::vector<BackendAddress> addresses;
    for (int s = 0; s < kShards; ++s) {
      shards.push_back(
          std::make_unique<DurablePartitionShard>(dataset, dirs[s]));
      addresses.push_back(shards.back()->address());
    }
    RouterOptions options;
    options.replication_factor = 1;
    ShardRouter router(addresses, options);
    ASSERT_TRUE(router.EnablePartition(kRooms).ok());
    for (int i = 0; i < 5; ++i)
      for (auto& shard : shards) shard->shard.server.TickAll();
    for (const auto& [room, assignment] : router.AssignmentSnapshot())
      expected[room] = shards[assignment.copies[0]]
                           ->shard.server.FindRoom(room)
                           ->ExportState();
    router.Shutdown();
  }  // the whole fleet dies

  // Cold restart: new shard processes over the old durable dirs, new
  // router told to recover instead of granting fresh.
  std::vector<std::unique_ptr<DurablePartitionShard>> shards;
  std::vector<BackendAddress> addresses;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(
        std::make_unique<DurablePartitionShard>(dataset, dirs[s]));
    ASSERT_TRUE(shards.back()->shard.control.RecoverFromDurable().ok());
    addresses.push_back(shards.back()->address());
  }
  RouterOptions options;
  options.replication_factor = 1;
  ShardRouter router(addresses, options);
  const Status recovered = router.RecoverPartition(kRooms);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();

  // Zero lost rooms, and every survivor is bit-exact with what the
  // pre-crash primary last had (tick, positions, goals, window — the
  // whole ExportState blob).
  const auto assignment = router.AssignmentSnapshot();
  ASSERT_EQ(assignment.size(), static_cast<size_t>(kRooms));
  for (const auto& [room, entry] : assignment) {
    auto hosted = shards[entry.copies[0]]->shard.server.FindRoom(room);
    ASSERT_NE(hosted, nullptr) << "room " << room;
    EXPECT_EQ(hosted->ExportState(), expected.at(room)) << "room " << room;
    const FriendResponse response =
        router.Route({.room = room, .user = 1, .deadline_ms = -1.0});
    EXPECT_TRUE(response.status.ok())
        << "room " << room << ": " << response.status.ToString();
  }
  EXPECT_EQ(router.metrics().recovered_rooms.load(), kRooms);
  // replication 1 means every room also had a standby replica; the
  // reconciliation released those stale copies.
  EXPECT_GT(router.metrics().discarded_replicas.load(), 0);
  router.Shutdown();
}

TEST(RecoverPartitionTest, LostShardsAreReGrantedFresh) {
  const Dataset dataset = SmallDataset();
  const int kRooms = 4;
  const std::string dir0 = ScratchDir("regrant_shard0");
  const std::string dir1 = ScratchDir("regrant_shard1");
  {
    std::vector<std::unique_ptr<DurablePartitionShard>> shards;
    shards.push_back(std::make_unique<DurablePartitionShard>(dataset, dir0));
    shards.push_back(std::make_unique<DurablePartitionShard>(dataset, dir1));
    std::vector<BackendAddress> addresses = {shards[0]->address(),
                                             shards[1]->address()};
    ShardRouter router(addresses, RouterOptions{});
    ASSERT_TRUE(router.EnablePartition(kRooms).ok());
    for (int i = 0; i < 3; ++i)
      for (auto& shard : shards) shard->shard.server.TickAll();
    router.Shutdown();
  }
  // Shard 1's disk is wiped (total data loss on that machine).
  fs::remove_all(dir1);
  fs::create_directories(dir1);

  std::vector<std::unique_ptr<DurablePartitionShard>> shards;
  shards.push_back(std::make_unique<DurablePartitionShard>(dataset, dir0));
  shards.push_back(std::make_unique<DurablePartitionShard>(dataset, dir1));
  for (auto& shard : shards)
    ASSERT_TRUE(shard->shard.control.RecoverFromDurable().ok());
  std::vector<BackendAddress> addresses = {shards[0]->address(),
                                           shards[1]->address()};
  ShardRouter router(addresses, RouterOptions{});
  ASSERT_TRUE(router.RecoverPartition(kRooms).ok());

  // Every room is owned and serves: the survivors from shard 0's disk at
  // their recovered ticks, the wiped ones re-granted fresh at tick 0.
  const auto assignment = router.AssignmentSnapshot();
  ASSERT_EQ(assignment.size(), static_cast<size_t>(kRooms));
  int fresh = 0;
  for (const auto& [room, entry] : assignment) {
    auto hosted = shards[entry.copies[0]]->shard.server.FindRoom(room);
    ASSERT_NE(hosted, nullptr) << "room " << room;
    if (hosted->tick() == 0) ++fresh;
    const FriendResponse response =
        router.Route({.room = room, .user = 1, .deadline_ms = -1.0});
    EXPECT_TRUE(response.status.ok()) << "room " << room;
  }
  EXPECT_GT(fresh, 0);  // the wiped shard's rooms restarted
  EXPECT_LT(fresh, kRooms) << "recovered rooms were thrown away";
  router.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace after
