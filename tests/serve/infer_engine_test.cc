// Concurrency coverage for the fused f32 inference engine under the
// serving runtime: one FrozenPoshgnn(kFusedF32) shared lock-free by all
// worker threads across concurrent rooms. Registered under the serve/
// ctest prefix so the TSan lane (scripts/check.sh tsan) race-checks the
// workspace pool and the const weight tensors.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/poshgnn.h"
#include "gtest/gtest.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

std::vector<std::unique_ptr<Room>> MakeRooms(const Dataset& dataset,
                                             int count) {
  std::vector<std::unique_ptr<Room>> rooms;
  for (int r = 0; r < count; ++r) {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    options.seed = 50 + r;
    rooms.push_back(Room::Create(options, &dataset).value());
  }
  return rooms;
}

TEST(InferEngineServeTest, FusedEngineSharedAcrossConcurrentRooms) {
  const Dataset dataset = SmallDataset(20, 4);
  PoshgnnConfig config;
  config.hidden_dim = 8;
  config.seed = 13;
  Poshgnn source(config);
  ServerOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.batch_requests = true;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 4),
      [&source] {
        return std::make_unique<FrozenPoshgnn>(source,
                                               InferEngine::kFusedF32);
      },
      options);
  // thread_safe() holds for both engines, so the server shares one
  // instance — every worker drives the same kernel tables and
  // workspace pool concurrently.
  ASSERT_TRUE(server.primary_is_shared());

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.TickAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const int kClients = 4, kPerClient = 25;
  std::atomic<int> completions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const FriendResponse response = server.Handle(
            {.room = (c + i) % 4, .user = (7 * c + i) % 20});
        if (response.status.ok() && !response.recommended.empty())
          completions.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  ticker.join();
  server.Shutdown();

  EXPECT_EQ(completions.load(), kClients * kPerClient);
  EXPECT_EQ(server.metrics().responses_ok.load(), kClients * kPerClient);
  EXPECT_EQ(server.metrics().errors.load(), 0);
}

TEST(InferEngineServeTest, BothEnginesAnswerIdenticallyThroughTheServer) {
  const Dataset dataset = SmallDataset(20, 4);
  PoshgnnConfig config;
  config.hidden_dim = 8;
  config.seed = 13;
  Poshgnn source(config);

  auto serve_once = [&](InferEngine engine) {
    ServerOptions options;
    options.num_threads = 2;
    options.default_deadline_ms = -1.0;
    RecommendationServer server(
        MakeRooms(dataset, 1),
        [&source, engine] {
          return std::make_unique<FrozenPoshgnn>(source, engine);
        },
        options);
    std::vector<std::vector<bool>> answers;
    for (int user = 0; user < dataset.num_users(); ++user) {
      const FriendResponse response = server.Handle({.room = 0, .user = user});
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      answers.push_back(response.recommended);
    }
    server.Shutdown();
    return answers;
  };

  // Same room seed + same tick (no ticker) => identical snapshots, so
  // the engines must agree request for request.
  EXPECT_EQ(serve_once(InferEngine::kFusedF32),
            serve_once(InferEngine::kReferenceF64));
}

}  // namespace
}  // namespace serve
}  // namespace after
