// Protocol-abuse and slow-peer tests for the epoll reactor
// (serve/net_server.h): the network-front behaviors that only show up
// against misbehaving clients — slow-loris partial headers, pipelined
// frames arriving byte-split and answered out of submission order,
// hostile frame sizes, peers that stop reading their responses, and
// rapid connection churn (the TSan target for accept/close races).

#include "serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/net_client.h"
#include "serve/wire.h"

namespace after {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Handler that answers inline on the reactor thread. `tick` echoes a
/// marker so tests can tell which request produced which response.
RequestHandler EchoHandler() {
  return [](const FriendRequest& request,
            std::function<void(const FriendResponse&)> done) {
    FriendResponse response;
    response.tick = 1000 + request.user;
    done(response);
  };
}

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

/// True when the server closes its end (recv sees EOF or a reset)
/// within the timeout; false when the connection stays open.
bool WaitForClose(int fd, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  char chunk[512];
  while (Clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return true;  // EOF or error: the server cut us off
  }
  return false;
}

/// Accumulates bytes off the socket until `count` complete frames are
/// extracted (or the timeout runs out).
std::vector<wire::Frame> ReadFrames(int fd, size_t count, int timeout_ms) {
  std::vector<wire::Frame> frames;
  std::string buffer;
  char chunk[4096];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (frames.size() < count && Clock::now() < deadline) {
    wire::Frame frame;
    size_t consumed = 0;
    const Status status = wire::ExtractFrame(buffer, &frame, &consumed);
    if (!status.ok()) break;
    if (consumed > 0) {
      buffer.erase(0, consumed);
      frames.push_back(std::move(frame));
      continue;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return frames;
}

TEST(NetAbuseTest, SlowLorisPartialHeaderIsClosedByIdleTimeout) {
  NetServerOptions options;
  options.idle_timeout_ms = 200.0;
  NetServer net(EchoHandler(), options);
  ASSERT_TRUE(net.Start().ok());

  // A slow-loris peer: open the connection, trickle 3 bytes of header,
  // then go silent. Without the idle sweep this fd would be pinned
  // forever; with it the reactor reaps the connection.
  const int fd = RawConnect(net.port());
  ASSERT_EQ(::send(fd, "\x31\x57\x46", 3, MSG_NOSIGNAL), 3);
  EXPECT_TRUE(WaitForClose(fd, 3000));
  EXPECT_GE(net.metrics().idle_closed.load(), 1);
  ::close(fd);
  net.Shutdown();
}

TEST(NetAbuseTest, InterleavedPipelinedFramesAreAnsweredById) {
  // Handler: room 0 answers ~150 ms late from another thread, any other
  // room answers inline. Joining the workers at scope exit keeps the
  // test TSan-clean.
  std::mutex mutex;
  std::vector<std::thread> workers;
  RequestHandler handler =
      [&](const FriendRequest& request,
          std::function<void(const FriendResponse&)> done) {
        if (request.room == 0) {
          std::lock_guard<std::mutex> lock(mutex);
          workers.emplace_back([request, done = std::move(done)] {
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            FriendResponse response;
            response.tick = 1000 + request.user;
            done(response);
          });
        } else {
          FriendResponse response;
          response.tick = 1000 + request.user;
          done(response);
        }
      };
  auto net = std::make_unique<NetServer>(handler, NetServerOptions{});
  ASSERT_TRUE(net->Start().ok());

  // Three pipelined frames on one connection: a slow request, a fast
  // request, and a ping — delivered byte-split so the second frame's
  // header straddles two TCP segments.
  std::string slow_bytes;
  wire::AppendRequestFrame(7, {.room = 0, .user = 1, .deadline_ms = -1.0},
                           &slow_bytes);
  std::string rest;
  wire::AppendRequestFrame(9, {.room = 1, .user = 2, .deadline_ms = -1.0},
                           &rest);
  wire::AppendPingFrame(11, &rest);
  const std::string bytes = slow_bytes + rest;
  const size_t split = slow_bytes.size() + 5;  // mid-header of frame 2

  const int fd = RawConnect(net->port());
  ASSERT_EQ(::send(fd, bytes.data(), split, MSG_NOSIGNAL),
            static_cast<ssize_t>(split));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::send(fd, bytes.data() + split, bytes.size() - split,
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size() - split));

  const std::vector<wire::Frame> frames = ReadFrames(fd, 3, 5000);
  ASSERT_EQ(frames.size(), 3u);

  // Responses are correlated by id, not arrival order: the fast request
  // and the ping overtake the slow request, whose answer comes last and
  // still carries its own id + payload.
  std::vector<uint64_t> order;
  for (const wire::Frame& frame : frames) {
    if (frame.type == wire::MessageType::kResponse) {
      auto decoded = wire::DecodeResponse(frame.payload);
      ASSERT_TRUE(decoded.ok());
      order.push_back(decoded.value().id);
      if (decoded.value().id == 7) {
        EXPECT_EQ(decoded.value().response.tick, 1001);
      }
      if (decoded.value().id == 9) {
        EXPECT_EQ(decoded.value().response.tick, 1002);
      }
    } else {
      ASSERT_EQ(frame.type, wire::MessageType::kPong);
      auto decoded = wire::DecodePingPong(frame.payload);
      ASSERT_TRUE(decoded.ok());
      order.push_back(decoded.value());
    }
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 9u);
  EXPECT_EQ(order[1], 11u);
  EXPECT_EQ(order[2], 7u);

  ::close(fd);
  net->Shutdown();
  net.reset();
  for (std::thread& worker : workers) worker.join();
}

TEST(NetAbuseTest, OversizedFrameIsRejected) {
  NetServer net(EchoHandler(), NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  // A well-formed header declaring a payload one byte over the cap: the
  // framing layer must fail fast instead of allocating the claimed
  // megabyte-plus and waiting for it.
  std::string header;
  const uint32_t magic = wire::kMagic;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
  header.push_back(static_cast<char>(wire::kProtocolVersion));
  header.push_back(static_cast<char>(wire::MessageType::kPing));
  header.push_back(0);
  header.push_back(0);
  const uint32_t oversized = wire::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((oversized >> (8 * i)) & 0xff));
  ASSERT_EQ(header.size(), wire::kHeaderBytes);

  const int fd = RawConnect(net.port());
  ASSERT_EQ(::send(fd, header.data(), header.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(header.size()));
  EXPECT_TRUE(WaitForClose(fd, 2000));
  EXPECT_GE(net.metrics().frames_rejected.load(), 1);
  ::close(fd);
  net.Shutdown();
}

TEST(NetAbuseTest, BackpressureSlowReaderIsDisconnected) {
  // Handler that parks every completion: responses are withheld until
  // the test releases them all at once, modelling a backend that
  // finishes a pile of work for a peer that meanwhile stopped reading.
  // (Inline responses can't trip the close cap — the pause threshold
  // throttles the reads first; only asynchronous completions landing on
  // an already-paused connection can grow the buffer past it.)
  std::mutex mutex;
  std::vector<std::function<void(const FriendResponse&)>> parked;
  RequestHandler handler =
      [&](const FriendRequest&,
          std::function<void(const FriendResponse&)> done) {
        std::lock_guard<std::mutex> lock(mutex);
        parked.push_back(std::move(done));
      };
  NetServerOptions options;
  options.write_pause_bytes = 4 * 1024;
  options.write_close_bytes = 16 * 1024;
  auto net = std::make_unique<NetServer>(handler, options);
  ASSERT_TRUE(net->Start().ok());

  // A tiny receive buffer keeps the client's TCP window from absorbing
  // the response burst for us.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(net->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

  const int kRequests = 64;
  std::string blast;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    wire::AppendRequestFrame(id, {.room = 0, .user = 1, .deadline_ms = -1.0},
                             &blast);
  }
  size_t sent = 0;
  auto deadline = Clock::now() + std::chrono::seconds(10);
  while (sent < blast.size() && Clock::now() < deadline) {
    const ssize_t n = ::send(fd, blast.data() + sent, blast.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 50);
    } else {
      break;
    }
  }
  ASSERT_EQ(sent, blast.size());

  // Wait for the reactor to hand every request to the handler, then
  // complete them all. The responses (far more bytes than the client
  // will ever drain) must cross write_close_bytes and cut the peer
  // loose instead of buffering without bound.
  while (Clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (static_cast<int>(parked.size()) == kRequests) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::function<void(const FriendResponse&)>> release;
  {
    std::lock_guard<std::mutex> lock(mutex);
    release.swap(parked);
  }
  ASSERT_EQ(static_cast<int>(release.size()), kRequests);
  // Maximum-size responses: the kernel's send buffer can silently
  // absorb megabytes on loopback, so the burst has to be big enough
  // that undelivered bytes land back in the server's own buffer.
  FriendResponse response;
  response.tick = 7;
  response.recommended.assign(wire::kMaxRecommendedBits, false);
  for (const auto& done : release) done(response);

  deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline &&
         net->metrics().backpressure_closed.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(net->metrics().backpressure_closed.load(), 1);
  ::close(fd);
  net->Shutdown();
}

TEST(NetAbuseTest, ConnectionChurn1kIsClean) {
  // The TSan target: many threads racing connect/ping/close against the
  // reactor's accept path and teardown. Every ping must round-trip and
  // the server must stay serviceable throughout.
  NetServer net(EchoHandler(), NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  const int kThreads = 4, kPerThread = 250;
  std::atomic<int> ok{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto client = NetClient::Connect("127.0.0.1", net.port());
        if (!client.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (client.value()->Ping().ok())
          ok.fetch_add(1);
        else
          failed.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GE(net.metrics().connections_accepted.load(),
            kThreads * kPerThread);
  // The churned connections are all gone; the front is still healthy.
  auto survivor = NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(survivor.ok());
  EXPECT_TRUE(survivor.value()->Ping().ok());
  net.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace after
