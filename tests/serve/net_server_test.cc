#include "serve/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "gtest/gtest.h"
#include "serve/net_client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

std::vector<std::unique_ptr<Room>> MakeRooms(const Dataset& dataset,
                                             int count) {
  std::vector<std::unique_ptr<Room>> rooms;
  for (int r = 0; r < count; ++r) {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    options.seed = 50 + r;
    rooms.push_back(Room::Create(options, &dataset).value());
  }
  return rooms;
}

/// Thread-safe primary that sleeps, then answers correct-size all-false.
class SlowRecommender : public Recommender {
 public:
  explicit SlowRecommender(double sleep_ms) : sleep_ms_(sleep_ms) {}
  std::string name() const override { return "Slow"; }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms_));
    return std::vector<bool>(context.positions->size(), false);
  }

 private:
  double sleep_ms_;
};

/// One in-process "shard": RecommendationServer + NetServer front.
struct TestShard {
  explicit TestShard(const Dataset& dataset, ServerOptions server_options,
                     RecommenderFactory factory, int rooms = 2)
      : server(MakeRooms(dataset, rooms), std::move(factory),
               server_options) {
    NetServerOptions net_options;  // ephemeral port
    net = std::make_unique<NetServer>(NetServer::HandlerFor(&server),
                                      net_options);
    const Status started = net->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestShard() { net->Shutdown(); }

  RecommendationServer server;
  std::unique_ptr<NetServer> net;
};

ServerOptions NoDeadlineOptions() {
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;
  return options;
}

/// Raw TCP connect for protocol-abuse tests that NetClient (which only
/// speaks well-formed frames) cannot express.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// Reads until EOF or timeout; returns everything received.
std::string RawReadUntilClose(int fd, int timeout_ms) {
  std::string received;
  char chunk[512];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<size_t>(n));
  }
  return received;
}

void AppendU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

TEST(NetServerTest, CallRoundTripsAndMatchesInProcessHandle) {
  const Dataset dataset = SmallDataset();
  TestShard shard(dataset, NoDeadlineOptions(),
                  [] { return std::make_unique<NearestRecommender>(5); });

  auto client = NetClient::Connect("127.0.0.1", shard.net->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  FriendRequest request;
  request.room = 1;
  request.user = 3;
  request.deadline_ms = -1.0;
  auto over_wire = client.value()->Call(request);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
  ASSERT_TRUE(over_wire.value().status.ok())
      << over_wire.value().status.ToString();

  // Nearest is stateless and no ticker runs, so the in-process answer
  // against the same snapshot must be bit-identical.
  const FriendResponse direct = shard.server.Handle(request);
  EXPECT_EQ(over_wire.value().recommended, direct.recommended);
  EXPECT_EQ(over_wire.value().tick, direct.tick);
  EXPECT_FALSE(over_wire.value().used_fallback);
  EXPECT_EQ(shard.net->connections_accepted(), 1);
}

TEST(NetServerTest, PingPongWorks) {
  const Dataset dataset = SmallDataset();
  TestShard shard(dataset, NoDeadlineOptions(),
                  [] { return std::make_unique<NearestRecommender>(5); });
  auto client = NetClient::Connect("127.0.0.1", shard.net->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
  EXPECT_TRUE(client.value()->Ping().ok());  // connection survives
}

TEST(NetServerTest, ServerErrorsTravelTheWire) {
  const Dataset dataset = SmallDataset();
  TestShard shard(dataset, NoDeadlineOptions(),
                  [] { return std::make_unique<NearestRecommender>(5); });
  auto client = NetClient::Connect("127.0.0.1", shard.net->port());
  ASSERT_TRUE(client.ok());

  auto bad_room = client.value()->Call({.room = 7, .user = 0});
  ASSERT_TRUE(bad_room.ok());  // transport fine; app status carries it
  EXPECT_EQ(bad_room.value().status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(bad_room.value().status.message().empty());

  auto bad_user = client.value()->Call({.room = 0, .user = 999});
  ASSERT_TRUE(bad_user.ok());
  EXPECT_EQ(bad_user.value().status.code(), StatusCode::kInvalidData);
  EXPECT_FALSE(client.value()->broken());
}

TEST(NetServerTest, DegradationLadderTravelsTheWire) {
  const Dataset dataset = SmallDataset();
  ServerOptions options = NoDeadlineOptions();
  options.num_threads = 1;
  options.fallback_k = 4;
  TestShard shard(dataset, options,
                  [] { return std::make_unique<SlowRecommender>(30.0); });
  auto client = NetClient::Connect("127.0.0.1", shard.net->port());
  ASSERT_TRUE(client.ok());

  // Slow primary misses the 10 ms budget: the shard degrades to the
  // nearest-neighbour fallback and the flag must survive serialization.
  auto response =
      client.value()->Call({.room = 0, .user = 2, .deadline_ms = 10.0});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response.value().status.ok())
      << response.value().status.ToString();
  EXPECT_TRUE(response.value().used_fallback);
  int selected = 0;
  for (bool b : response.value().recommended) selected += b ? 1 : 0;
  EXPECT_EQ(selected, 4);
}

TEST(NetServerTest, ShedTravelsTheWire) {
  const Dataset dataset = SmallDataset();
  ServerOptions options = NoDeadlineOptions();
  options.num_threads = 1;
  options.queue_capacity = 1;
  TestShard shard(dataset, options,
                  [] { return std::make_unique<SlowRecommender>(50.0); });

  const int kCallers = 6;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      auto client = NetClient::Connect("127.0.0.1", shard.net->port());
      ASSERT_TRUE(client.ok());
      auto response =
          client.value()->Call({.room = 0, .user = c, .deadline_ms = -1.0});
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      if (response.value().status.ok())
        ok.fetch_add(1);
      else if (response.value().status.code() ==
               StatusCode::kResourceExhausted)
        shed.fetch_add(1);
      else
        other.fetch_add(1);
    });
  }
  for (auto& caller : callers) caller.join();
  // One in the worker + one queued; with six simultaneous callers at
  // least one must be shed, and the shed answer crosses the wire as
  // kResourceExhausted — not as a dropped connection.
  EXPECT_EQ(ok.load() + shed.load(), kCallers);
  EXPECT_GE(shed.load(), 1);
  EXPECT_EQ(other.load(), 0);
}

TEST(NetServerTest, GarbageBytesCloseTheConnection) {
  const Dataset dataset = SmallDataset();
  TestShard shard(dataset, NoDeadlineOptions(),
                  [] { return std::make_unique<NearestRecommender>(5); });

  const int fd = RawConnect(shard.net->port());
  const std::string junk = "this is definitely not a wire frame";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  // The server must hang up (framing is unrecoverable), not answer.
  EXPECT_TRUE(RawReadUntilClose(fd, 2000).empty());
  ::close(fd);
  EXPECT_GE(shard.net->frames_rejected(), 1);

  // And the listener must still be healthy for the next client.
  auto client = NetClient::Connect("127.0.0.1", shard.net->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
}

TEST(NetServerTest, WellFramedBadPayloadIsAnsweredInvalidArgument) {
  const Dataset dataset = SmallDataset();
  TestShard shard(dataset, NoDeadlineOptions(),
                  [] { return std::make_unique<NearestRecommender>(5); });

  // Hand-build a correctly framed kRequest whose payload is 10 bytes —
  // a valid id plus junk, too short to be a FriendRequest.
  std::string bytes;
  AppendU32(wire::kMagic, &bytes);
  bytes.push_back(static_cast<char>(wire::kProtocolVersion));
  bytes.push_back(static_cast<char>(wire::MessageType::kRequest));
  bytes.push_back(0);
  bytes.push_back(0);  // reserved
  AppendU32(10, &bytes);
  const uint64_t id = 4242;
  for (int i = 0; i < 8; ++i)
    bytes.push_back(static_cast<char>((id >> (8 * i)) & 0xff));
  bytes.push_back('x');
  bytes.push_back('y');

  const int fd = RawConnect(shard.net->port());
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  const std::string reply = RawReadUntilClose(fd, 2000);
  ::close(fd);

  wire::Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(wire::ExtractFrame(reply, &frame, &consumed).ok());
  ASSERT_EQ(frame.type, wire::MessageType::kResponse);
  auto decoded = wire::DecodeResponse(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, id);  // correlation id echoed back
  EXPECT_EQ(decoded.value().response.status.code(),
            StatusCode::kInvalidArgument);
}

TEST(NetServerTest, ShutdownBreaksClientsWithUnavailable) {
  const Dataset dataset = SmallDataset();
  auto shard = std::make_unique<TestShard>(
      dataset, NoDeadlineOptions(),
      [] { return std::make_unique<NearestRecommender>(5); });
  auto client = NetClient::Connect("127.0.0.1", shard->net->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Ping().ok());

  shard->net->Shutdown();
  auto response =
      client.value()->Call({.room = 0, .user = 1, .deadline_ms = -1.0});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client.value()->broken());
}

TEST(NetServerTest, ConcurrentClientsAllComplete) {
  const Dataset dataset = SmallDataset(20, 4);
  ServerOptions options = NoDeadlineOptions();
  options.num_threads = 4;
  options.queue_capacity = 256;
  TestShard shard(dataset, options,
                  [] { return std::make_unique<NearestRecommender>(5); },
                  /*rooms=*/4);

  const int kClients = 4, kPerClient = 40;
  std::atomic<int> completions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = NetClient::Connect("127.0.0.1", shard.net->port());
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < kPerClient; ++i) {
        auto response = client.value()->Call(
            {.room = (c + i) % 4, .user = (7 * c + i) % 20,
             .deadline_ms = -1.0});
        if (response.ok() && response.value().status.ok())
          completions.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(completions.load(), kClients * kPerClient);
  EXPECT_EQ(shard.net->connections_accepted(), kClients);
  EXPECT_EQ(shard.net->frames_rejected(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace after
