#include "serve/shard_control.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "gtest/gtest.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/room.h"
#include "serve/router.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

/// The same deterministic per-room factory every partitioned shard in a
/// fleet uses (tools/serve_shard --partitioned): identical seeds mean a
/// fresh replica of room r is bit-exact with any other shard's fresh
/// replica of room r until their tick counts diverge.
RoomFactory FactoryFor(const Dataset* dataset) {
  return [dataset](int r) -> Result<std::unique_ptr<Room>> {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    options.seed = 900 + r;
    return Room::Create(options, dataset);
  };
}

ServerOptions TestServerOptions() {
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;
  return options;
}

void ExpectSamePositions(const std::vector<Vec2>& want,
                         const std::vector<Vec2>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].x, got[i].x) << "user " << i;  // bit-exact, not near
    EXPECT_EQ(want[i].y, got[i].y) << "user " << i;
  }
}

// ---------------------------------------------------------------------------
// Room migration blob.

TEST(RoomStateTest, ExportApplyRoundTripIsBitExact) {
  const Dataset dataset = SmallDataset();
  const auto factory = FactoryFor(&dataset);
  auto donor = factory(3).value();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(donor->Tick().ok());
  const std::string blob = donor->ExportState();

  auto receiver = factory(3).value();
  const Status applied = receiver->ApplyState(blob);
  ASSERT_TRUE(applied.ok()) << applied.ToString();

  EXPECT_EQ(receiver->tick(), donor->tick());
  ExpectSamePositions(donor->snapshot()->positions(),
                      receiver->snapshot()->positions());
  const auto donor_window = donor->trajectory_window();
  const auto receiver_window = receiver->trajectory_window();
  ASSERT_EQ(donor_window.size(), receiver_window.size());
  for (size_t f = 0; f < donor_window.size(); ++f)
    ExpectSamePositions(donor_window[f], receiver_window[f]);
}

TEST(RoomStateTest, MigratedRoomKeepsTickingAfterApply) {
  const Dataset dataset = SmallDataset();
  const auto factory = FactoryFor(&dataset);
  auto donor = factory(0).value();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(donor->Tick().ok());

  auto receiver = factory(0).value();
  ASSERT_TRUE(receiver->ApplyState(donor->ExportState()).ok());
  // The handoff is a resume point, not a freeze: the new owner keeps
  // simulating from the donor's state.
  ASSERT_TRUE(receiver->Tick().ok());
  EXPECT_EQ(receiver->tick(), 4);
  EXPECT_EQ(static_cast<int>(receiver->trajectory_window().size()), 5);
}

TEST(RoomStateTest, ApplyStateIsAllOrNothing) {
  const Dataset dataset = SmallDataset();
  const auto factory = FactoryFor(&dataset);
  auto donor = factory(1).value();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(donor->Tick().ok());
  const std::string blob = donor->ExportState();

  auto receiver = factory(1).value();
  const std::vector<Vec2> fresh = receiver->snapshot()->positions();

  EXPECT_FALSE(receiver->ApplyState("").ok());
  EXPECT_FALSE(receiver->ApplyState("not a parameter block").ok());
  // Every truncation that drops at least one token must be rejected
  // before any mutation happens. (The blob is text: a cut inside the
  // final token or its trailing whitespace still reads as a complete
  // block, which the wire layer's length-prefixed framing rules out in
  // transit — tests/serve/wire_test.cc covers that side.)
  const size_t last_char = blob.find_last_not_of(" \t\n");
  ASSERT_NE(last_char, std::string::npos);
  const size_t last_token = blob.find_last_of(" \t\n", last_char);
  ASSERT_NE(last_token, std::string::npos);
  for (size_t cut = 0; cut <= last_token; cut += 97)
    EXPECT_FALSE(receiver->ApplyState(blob.substr(0, cut)).ok())
        << "cut=" << cut;

  EXPECT_EQ(receiver->tick(), 0);
  ExpectSamePositions(fresh, receiver->snapshot()->positions());

  // And the untouched room still accepts the intact blob.
  ASSERT_TRUE(receiver->ApplyState(blob).ok());
  EXPECT_EQ(receiver->tick(), donor->tick());
}

// ---------------------------------------------------------------------------
// ShardControl: the shard-side ownership ledger.

struct ControlHarness {
  explicit ControlHarness(const Dataset& dataset)
      : server({}, [] { return std::make_unique<NearestRecommender>(5); },
               TestServerOptions()),
        control(&server, FactoryFor(&dataset)) {}

  RecommendationServer server;
  ShardControl control;
};

TEST(ShardControlTest, AssignOwnReleaseLifecycle) {
  const Dataset dataset = SmallDataset();
  ControlHarness shard(dataset);

  EXPECT_FALSE(shard.control.Owns(7));
  EXPECT_EQ(shard.control.EpochFor(7), 0u);
  EXPECT_EQ(shard.server.FindRoom(7), nullptr);

  const Status assigned = shard.control.Assign(7, 1, "");
  ASSERT_TRUE(assigned.ok()) << assigned.ToString();
  EXPECT_TRUE(shard.control.Owns(7));
  EXPECT_EQ(shard.control.EpochFor(7), 1u);
  EXPECT_NE(shard.server.FindRoom(7), nullptr);
  ASSERT_EQ(shard.control.OwnedRooms().size(), 1u);
  EXPECT_EQ(shard.control.OwnedRooms()[0], 7);

  auto released = shard.control.Release(7, 2);
  ASSERT_TRUE(released.ok()) << released.status().ToString();
  EXPECT_FALSE(released.value().empty());  // the migration blob
  EXPECT_FALSE(shard.control.Owns(7));
  EXPECT_EQ(shard.server.FindRoom(7), nullptr);  // unhosted, not just unowned
  EXPECT_EQ(shard.control.EpochFor(7), 2u);      // remembered past release

  // Releasing a room we no longer own is the shard saying kNotOwner.
  EXPECT_EQ(shard.control.Release(7, 3).status().code(),
            StatusCode::kNotOwner);
}

TEST(ShardControlTest, StaleEpochsAreFenced) {
  const Dataset dataset = SmallDataset();
  ControlHarness shard(dataset);

  ASSERT_TRUE(shard.control.Assign(7, 5, "").ok());
  // A reordered duplicate or older grant must not clobber ownership.
  EXPECT_FALSE(shard.control.Assign(7, 5, "").ok());
  EXPECT_FALSE(shard.control.Assign(7, 4, "").ok());
  EXPECT_TRUE(shard.control.Owns(7));
  // A release staler than the active grant is likewise rejected.
  EXPECT_FALSE(shard.control.Release(7, 3).ok());
  EXPECT_TRUE(shard.control.Owns(7));

  ASSERT_TRUE(shard.control.Release(7, 6).ok());
  // The fence survives release: the router already moved this room on,
  // so a late grant from before the move must not resurrect ownership.
  EXPECT_FALSE(shard.control.Assign(7, 6, "").ok());
  EXPECT_FALSE(shard.control.Owns(7));
  ASSERT_TRUE(shard.control.Assign(7, 7, "").ok());
  EXPECT_TRUE(shard.control.Owns(7));
}

TEST(ShardControlTest, MigrationBlobRestoresDonorStateOnTheNewOwner) {
  const Dataset dataset = SmallDataset();
  ControlHarness donor(dataset);
  ControlHarness receiver(dataset);

  ASSERT_TRUE(donor.control.Assign(2, 1, "").ok());
  auto room = donor.server.FindRoom(2);
  ASSERT_NE(room, nullptr);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(room->Tick().ok());
  const std::vector<Vec2> donor_positions = room->snapshot()->positions();

  auto blob = donor.control.Release(2, 2);
  ASSERT_TRUE(blob.ok());
  const Status assigned = receiver.control.Assign(2, 3, blob.value());
  ASSERT_TRUE(assigned.ok()) << assigned.ToString();

  auto hosted = receiver.server.FindRoom(2);
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(hosted->tick(), 4);
  ExpectSamePositions(donor_positions, hosted->snapshot()->positions());
}

TEST(ShardControlTest, CorruptMigrationBlobLeavesShardUnchanged) {
  const Dataset dataset = SmallDataset();
  ControlHarness shard(dataset);

  EXPECT_FALSE(shard.control.Assign(4, 1, "definitely not a blob").ok());
  // All-or-nothing at the shard level too: no ownership, no hosted room.
  EXPECT_FALSE(shard.control.Owns(4));
  EXPECT_EQ(shard.server.FindRoom(4), nullptr);
  // The failed grant still burned its epoch (the router will retry with
  // a fresh one, never replay an old number).
  EXPECT_FALSE(shard.control.Assign(4, 1, "").ok());
  EXPECT_TRUE(shard.control.Assign(4, 2, "").ok());
}

// ---------------------------------------------------------------------------
// Partitioned fleet: router-driven ownership over real TCP shards.

/// One partitioned shard worker: starts owning nothing; the router
/// grants rooms over the wire. The shape of tools/serve_shard
/// --partitioned, addressable from a unit test.
struct PartitionShard {
  explicit PartitionShard(const Dataset& dataset)
      : server({}, [] { return std::make_unique<NearestRecommender>(5); },
               TestServerOptions()),
        control(&server, FactoryFor(&dataset)) {
    net = std::make_unique<NetServer>(NetServer::HandlerFor(&server),
                                      NetServerOptions{});
    net->set_room_control(NetServer::ControlFor(&control));
    const Status started = net->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~PartitionShard() { net->Shutdown(); }

  BackendAddress address() const { return {"127.0.0.1", net->port()}; }

  RecommendationServer server;
  ShardControl control;
  std::unique_ptr<NetServer> net;
};

struct PartitionFleet {
  PartitionFleet(int num_shards, int rooms, int replication,
                 RouterOptions options = [] {
                   RouterOptions defaults;
                   defaults.ejection_ms = 200.0;
                   return defaults;
                 }())
      : dataset(SmallDataset()), num_rooms(rooms) {
    std::vector<BackendAddress> addresses;
    for (int s = 0; s < num_shards; ++s) {
      shards.push_back(std::make_unique<PartitionShard>(dataset));
      addresses.push_back(shards.back()->address());
    }
    options.replication_factor = replication;
    router = std::make_unique<ShardRouter>(addresses, options);
    const Status enabled = router->EnablePartition(rooms);
    EXPECT_TRUE(enabled.ok()) << enabled.ToString();
  }
  ~PartitionFleet() { router->Shutdown(); }

  FriendResponse Route(int room, int user) {
    return router->Route({.room = room, .user = user, .deadline_ms = -1.0});
  }

  /// Primary-room count per backend index, from the router's table.
  std::unordered_map<int, int> PrimaryCounts() const {
    std::unordered_map<int, int> counts;
    for (const auto& [room, assignment] : router->AssignmentSnapshot()) {
      EXPECT_FALSE(assignment.copies.empty()) << "room " << room;
      if (!assignment.copies.empty()) counts[assignment.copies[0]]++;
    }
    return counts;
  }

  Dataset dataset;
  int num_rooms;
  std::vector<std::unique_ptr<PartitionShard>> shards;
  std::unique_ptr<ShardRouter> router;
};

TEST(PartitionTest, EveryRoomIsServedAndOwnershipIsBalanced) {
  PartitionFleet fleet(/*num_shards=*/3, /*rooms=*/9, /*replication=*/0);

  const auto assignment = fleet.router->AssignmentSnapshot();
  ASSERT_EQ(assignment.size(), 9u);
  int hosted_total = 0;
  for (const auto& shard : fleet.shards)
    hosted_total += static_cast<int>(shard->control.OwnedRooms().size());
  // replication 0: every room lives on exactly one shard — the whole
  // point of partitioning (per-shard memory is rooms/N, not rooms).
  EXPECT_EQ(hosted_total, 9);
  for (const auto& [backend, primaries] : fleet.PrimaryCounts())
    EXPECT_EQ(primaries, 3) << "backend " << backend;

  for (int room = 0; room < 9; ++room) {
    const FriendResponse response = fleet.Route(room, room % 16);
    ASSERT_TRUE(response.status.ok())
        << "room " << room << ": " << response.status.ToString();
  }
  EXPECT_EQ(fleet.router->metrics().exhausted.load(), 0);
}

TEST(PartitionTest, ReplicationKeepsAWarmStandbyPerRoom) {
  PartitionFleet fleet(/*num_shards=*/3, /*rooms=*/6, /*replication=*/1);
  for (const auto& [room, assignment] : fleet.router->AssignmentSnapshot()) {
    ASSERT_EQ(assignment.copies.size(), 2u) << "room " << room;
    EXPECT_NE(assignment.copies[0], assignment.copies[1]) << "room " << room;
    // Both copies really are hosted on their shards.
    for (const int backend : assignment.copies) {
      EXPECT_TRUE(fleet.shards[backend]->control.Owns(room))
          << "room " << room << " backend " << backend;
      EXPECT_NE(fleet.shards[backend]->server.FindRoom(room), nullptr);
    }
  }
}

TEST(PartitionTest, NonOwnerAnswersNotOwnerOnTheWire) {
  PartitionFleet fleet(/*num_shards=*/2, /*rooms=*/4, /*replication=*/0);
  const auto assignment = fleet.router->AssignmentSnapshot();
  const int owner = assignment.at(0).copies[0];
  const int other = 1 - owner;

  auto client = NetClient::Connect("127.0.0.1", fleet.shards[other]->net->port());
  ASSERT_TRUE(client.ok());
  auto response =
      client.value()->Call({.room = 0, .user = 1, .deadline_ms = -1.0});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // A healthy shard asked for a room it does not own: kNotOwner travels
  // the wire as a first-class answer, not a transport failure.
  EXPECT_EQ(response.value().status.code(), StatusCode::kNotOwner);

  // The owner itself answers normally.
  auto direct = NetClient::Connect("127.0.0.1", fleet.shards[owner]->net->port());
  ASSERT_TRUE(direct.ok());
  auto owned = direct.value()->Call({.room = 0, .user = 1, .deadline_ms = -1.0});
  ASSERT_TRUE(owned.ok());
  EXPECT_TRUE(owned.value().status.ok()) << owned.value().status.ToString();
}

TEST(PartitionTest, RouterRedirectsNotOwnerToTheStandby) {
  PartitionFleet fleet(/*num_shards=*/2, /*rooms=*/4, /*replication=*/1);
  const auto assignment = fleet.router->AssignmentSnapshot();
  const int primary = assignment.at(0).copies[0];

  // Yank room 0 from its primary behind the router's back — the shard
  // now answers kNotOwner while the router's table still lists it first.
  ASSERT_TRUE(
      fleet.shards[primary]->control.Release(0, assignment.at(0).epoch + 1)
          .ok());

  const int64_t redirects_before = fleet.router->metrics().not_owner.load();
  const FriendResponse response = fleet.Route(0, 1);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GE(fleet.router->metrics().not_owner.load(), redirects_before + 1);
  // Nobody was ejected: kNotOwner is an ownership miss, not a failure.
  EXPECT_EQ(fleet.router->metrics().ejections.load(), 0);
}

TEST(PartitionTest, AddBackendLiveRebalancesWithStateHandoff) {
  PartitionFleet fleet(/*num_shards=*/2, /*rooms=*/8, /*replication=*/0);

  // Advance every room a few ticks so a migrated room provably carries
  // state (a fresh rebuild would restart at tick 0).
  const auto before = fleet.router->AssignmentSnapshot();
  for (const auto& [room, assignment] : before) {
    auto hosted = fleet.shards[assignment.copies[0]]->server.FindRoom(room);
    ASSERT_NE(hosted, nullptr) << "room " << room;
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(hosted->Tick().ok());
  }

  auto newcomer = std::make_unique<PartitionShard>(fleet.dataset);
  auto added = fleet.router->AddBackendLive(newcomer->address());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 2);

  // The newcomer took its share of primaries (ceil caps keep the spread
  // within one room of even) via release -> state -> assign handoffs.
  const auto counts = fleet.PrimaryCounts();
  EXPECT_GE(counts.at(2), 2);
  for (const auto& [backend, primaries] : counts) {
    EXPECT_LE(primaries, 3) << "backend " << backend;
    EXPECT_GE(primaries, 2) << "backend " << backend;
  }
  EXPECT_GT(fleet.router->metrics().migrations.load(), 0);

  // Every room still serves, from a replica that resumed at tick 3 —
  // migrated rooms inherited the donor's state, unmoved rooms kept it.
  fleet.shards.push_back(std::move(newcomer));
  for (const auto& [room, assignment] : fleet.router->AssignmentSnapshot()) {
    auto hosted = fleet.shards[assignment.copies[0]]->server.FindRoom(room);
    ASSERT_NE(hosted, nullptr) << "room " << room;
    EXPECT_EQ(hosted->tick(), 3) << "room " << room;
    const FriendResponse response = fleet.Route(room, 2);
    ASSERT_TRUE(response.status.ok())
        << "room " << room << ": " << response.status.ToString();
  }
}

TEST(PartitionTest, KilledPrimaryFailsOverToABitExactStandby) {
  PartitionFleet fleet(/*num_shards=*/3, /*rooms=*/6, /*replication=*/1);
  const auto assignment = fleet.router->AssignmentSnapshot();
  const int victim_room = 0;
  const int primary = assignment.at(victim_room).copies[0];
  const int standby = assignment.at(victim_room).copies[1];

  // Tick both replicas in lockstep (the fleet invariant: same factory
  // seed + same tick count => bit-identical rooms), then remember the
  // primary's scene.
  auto primary_room = fleet.shards[primary]->server.FindRoom(victim_room);
  auto standby_room = fleet.shards[standby]->server.FindRoom(victim_room);
  ASSERT_NE(primary_room, nullptr);
  ASSERT_NE(standby_room, nullptr);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary_room->Tick().ok());
    ASSERT_TRUE(standby_room->Tick().ok());
  }
  const std::vector<Vec2> last_served = primary_room->snapshot()->positions();

  fleet.shards[primary]->net->Shutdown();
  fleet.router->ProbeAll();
  EXPECT_GT(fleet.router->RepairPartition(), 0);

  // The standby was promoted in place: no state was sent, it keeps
  // serving its own replica — bit-exact with what the primary last had.
  const auto repaired = fleet.router->AssignmentSnapshot();
  EXPECT_EQ(repaired.at(victim_room).copies[0], standby);
  ExpectSamePositions(last_served, standby_room->snapshot()->positions());

  const FriendResponse response = fleet.Route(victim_room, 1);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GE(fleet.router->metrics().repairs.load(), 1);
}

TEST(PartitionTest, ConcurrentRoutingSurvivesKillAndGrowth) {
  // The TSan target: many threads in Route() while one shard dies, the
  // table is repaired, and a newcomer triggers migrations — all at once.
  // replication 1 means every request must still be answered.
  RouterOptions options;
  options.ejection_ms = 100.0;
  options.client.connect_timeout_ms = 500.0;
  PartitionFleet fleet(/*num_shards=*/3, /*rooms=*/6, /*replication=*/1,
                       options);
  auto newcomer = std::make_unique<PartitionShard>(fleet.dataset);

  const int kThreads = 4, kPerThread = 40;
  std::atomic<int> ok{0}, failed{0};
  std::thread grower([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // The racing kill below may land mid-migration, in which case a
    // grant aimed at the dying shard legitimately fails — zero request
    // loss (asserted at the bottom) is the invariant, not a clean add.
    fleet.router->AddBackendLive(newcomer->address());
  });
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fleet.shards[0]->net->Shutdown();
    fleet.router->ProbeAll();
    fleet.router->RepairPartition();
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerThread; ++i) {
        const FriendResponse response =
            fleet.Route((c + i) % 6, (3 * c + i) % 16);
        if (response.status.ok())
          ok.fetch_add(1);
        else
          failed.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  grower.join();
  killer.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(failed.load(), 0);
  fleet.shards.push_back(std::move(newcomer));  // outlive the router
}

}  // namespace
}  // namespace serve
}  // namespace after
