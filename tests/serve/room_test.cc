#include "serve/room.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 321;
  return GenerateTimikLike(config);
}

TEST(RoomTest, CreateValidatesInput) {
  EXPECT_FALSE(Room::Create(Room::Options{}, nullptr).ok());

  Dataset empty;
  EXPECT_FALSE(Room::Create(Room::Options{}, &empty).ok());

  const Dataset dataset = SmallDataset();
  Room::Options bad_session;
  bad_session.session = 99;
  EXPECT_FALSE(Room::Create(bad_session, &dataset).ok());

  EXPECT_TRUE(Room::Create(Room::Options{}, &dataset).ok());
}

TEST(RoomTest, ReplayFollowsRecordedSessionAndExhausts) {
  const Dataset dataset = SmallDataset();
  Room::Options options;
  options.mode = Room::Mode::kReplay;
  options.session = -1;  // last session
  auto room = Room::Create(options, &dataset).value();
  const XrWorld& world = dataset.sessions.back();

  for (int t = 0; t < world.num_steps(); ++t) {
    auto snapshot = room->snapshot();
    ASSERT_EQ(snapshot->tick(), t);
    const auto& expected = world.PositionsAt(t);
    ASSERT_EQ(snapshot->positions().size(), expected.size());
    for (size_t u = 0; u < expected.size(); ++u) {
      EXPECT_DOUBLE_EQ(snapshot->positions()[u].x, expected[u].x);
      EXPECT_DOUBLE_EQ(snapshot->positions()[u].y, expected[u].y);
    }
    const Status status = room->Tick();
    if (t + 1 < world.num_steps()) {
      EXPECT_TRUE(status.ok());
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      // The last snapshot stays published.
      EXPECT_EQ(room->tick(), world.num_steps() - 1);
    }
  }
}

TEST(RoomTest, SnapshotOcclusionIsBuiltOnceAndStable) {
  const Dataset dataset = SmallDataset();
  auto room = Room::Create(Room::Options{}, &dataset).value();
  auto snapshot = room->snapshot();
  const OcclusionGraph& first = snapshot->OcclusionFor(3);
  const OcclusionGraph& again = snapshot->OcclusionFor(3);
  EXPECT_EQ(&first, &again);  // cached, not rebuilt
  EXPECT_EQ(first.num_nodes(), snapshot->num_users());

  const StepContext context = snapshot->ContextFor(3);
  EXPECT_EQ(context.target, 3);
  EXPECT_EQ(context.t, snapshot->tick());
  EXPECT_EQ(context.occlusion, &first);
  EXPECT_EQ(context.positions, &snapshot->positions());
}

/// Hammer snapshots from reader threads while the main thread ticks a
/// live room. Run under AFTER_SANITIZE=thread this is the data-race
/// check for the publish/read path; the assertions themselves verify
/// that every reader observes an internally consistent snapshot.
TEST(RoomTest, SnapshotsStayConsistentUnderConcurrentTicks) {
  const Dataset dataset = SmallDataset(12, 4);
  Room::Options options;
  options.mode = Room::Mode::kLive;
  options.seed = 7;
  auto room = Room::Create(options, &dataset).value();
  const int n = room->num_users();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      unsigned state = 12345u + r;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = room->snapshot();
        state = state * 1664525u + 1013904223u;
        const int target = static_cast<int>(state % n);
        const StepContext context = snapshot->ContextFor(target);
        if (static_cast<int>(context.positions->size()) != n ||
            context.occlusion->num_nodes() != n ||
            context.t != snapshot->tick())
          failures.fetch_add(1);
        for (const Vec2& p : *context.positions)
          if (!std::isfinite(p.x) || !std::isfinite(p.y))
            failures.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 200; ++t) ASSERT_TRUE(room->Tick().ok());
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(room->tick(), 200);
}

}  // namespace
}  // namespace serve
}  // namespace after
