#include "serve/router.h"

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "gtest/gtest.h"
#include "serve/net_server.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

std::vector<std::unique_ptr<Room>> MakeRooms(const Dataset& dataset,
                                             int count) {
  std::vector<std::unique_ptr<Room>> rooms;
  for (int r = 0; r < count; ++r) {
    Room::Options options;
    options.id = r;
    options.mode = Room::Mode::kLive;
    // Same seeds on every shard replica: the fleet invariant that makes
    // failover safe (any shard can answer any room).
    options.seed = 50 + r;
    rooms.push_back(Room::Create(options, &dataset).value());
  }
  return rooms;
}

/// One in-process shard worker: full room set + TCP front, exactly the
/// shape of tools/serve_shard but addressable from a unit test.
struct TestShard {
  TestShard(const Dataset& dataset, int rooms)
      : server(MakeRooms(dataset, rooms),
               [] { return std::make_unique<NearestRecommender>(5); },
               [] {
                 ServerOptions options;
                 options.num_threads = 2;
                 options.default_deadline_ms = -1.0;
                 return options;
               }()) {
    net = std::make_unique<NetServer>(NetServer::HandlerFor(&server),
                                      NetServerOptions{});
    const Status started = net->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestShard() { net->Shutdown(); }

  BackendAddress address() const { return {"127.0.0.1", net->port()}; }
  int64_t answered() { return server.metrics().responses_ok.load(); }

  RecommendationServer server;
  std::unique_ptr<NetServer> net;
};

/// A fleet of in-process shards plus a router over them.
struct TestFleet {
  TestFleet(int num_shards, int rooms, RouterOptions options = [] {
    RouterOptions defaults;
    defaults.ejection_ms = 200.0;
    return defaults;
  }())
      : dataset(SmallDataset()) {
    std::vector<BackendAddress> addresses;
    for (int s = 0; s < num_shards; ++s) {
      shards.push_back(std::make_unique<TestShard>(dataset, rooms));
      addresses.push_back(shards.back()->address());
    }
    router = std::make_unique<ShardRouter>(addresses, options);
  }
  ~TestFleet() { router->Shutdown(); }

  Dataset dataset;
  std::vector<std::unique_ptr<TestShard>> shards;
  std::unique_ptr<ShardRouter> router;
};

std::vector<BackendAddress> FakeBackends(int count) {
  std::vector<BackendAddress> backends;
  for (int i = 0; i < count; ++i)
    backends.push_back({"10.0.0." + std::to_string(i + 1), 7000 + i});
  return backends;
}

TEST(RouterTest, HashIsStableAcrossRouterInstances) {
  // ShardFor never dials, so fake addresses are fine here.
  RouterOptions options;
  ShardRouter first(FakeBackends(5), options);
  ShardRouter second(FakeBackends(5), options);
  for (int room = 0; room < 500; ++room)
    ASSERT_EQ(first.ShardFor(room), second.ShardFor(room)) << room;
}

TEST(RouterTest, HashSpreadsRoomsOverEveryBackend) {
  RouterOptions options;
  ShardRouter router(FakeBackends(5), options);
  std::set<int> used;
  for (int room = 0; room < 500; ++room) used.insert(router.ShardFor(room));
  EXPECT_EQ(used.size(), 5u);
}

TEST(RouterTest, AddingABackendMovesOnlyAFractionOfRooms) {
  // The consistent-hashing contract: growing the fleet from N to N+1
  // should move ~1/(N+1) of rooms, not reshuffle everything.
  RouterOptions options;
  ShardRouter before(FakeBackends(4), options);
  ShardRouter after_grow(FakeBackends(5), options);
  const int kRooms = 1000;
  int moved = 0;
  for (int room = 0; room < kRooms; ++room) {
    if (before.ShardFor(room) != after_grow.ShardFor(room)) ++moved;
  }
  EXPECT_GT(moved, 0);              // the new backend does take rooms
  EXPECT_LT(moved, kRooms / 2);     // but nowhere near a full reshuffle
}

TEST(RouterTest, RoutesToTheHomeShard) {
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/4);
  for (int room = 0; room < 4; ++room) {
    const int home = fleet.router->ShardFor(room);
    const int64_t before = fleet.shards[home]->answered();
    const FriendResponse response =
        fleet.router->Route({.room = room, .user = 1, .deadline_ms = -1.0});
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(fleet.shards[home]->answered(), before + 1)
        << "room " << room << " not served by its home shard " << home;
  }
  EXPECT_EQ(fleet.router->metrics().retried.load(), 0);
  EXPECT_EQ(fleet.router->metrics().exhausted.load(), 0);
}

TEST(RouterTest, MuxLinksAreReusedAcrossCalls) {
  TestFleet fleet(/*num_shards=*/1, /*rooms=*/2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fleet.router
                    ->Route({.room = i % 2, .user = i, .deadline_ms = -1.0})
                    .status.ok());
  }
  EXPECT_GE(fleet.router->metrics().link_reuse.load(), 8);
  EXPECT_LE(fleet.router->metrics().connects.load(), 2);
}

TEST(RouterTest, FailoverOnADeadBackendLosesNothing) {
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/4);
  // Pick a room homed on the shard we are about to kill, and warm a
  // mux link to it so the failure is discovered mid-call.
  const int victim_room = 0;
  const int victim = fleet.router->ShardFor(victim_room);
  const int survivor = 1 - victim;
  ASSERT_TRUE(fleet.router
                  ->Route({.room = victim_room, .user = 1,
                           .deadline_ms = -1.0})
                  .status.ok());

  fleet.shards[victim]->net->Shutdown();

  const int64_t survivor_before = fleet.shards[survivor]->answered();
  const FriendResponse response = fleet.router->Route(
      {.room = victim_room, .user = 2, .deadline_ms = -1.0});
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(fleet.shards[survivor]->answered(), survivor_before + 1);
  EXPECT_GE(fleet.router->metrics().retried.load(), 1);
  EXPECT_GE(fleet.router->metrics().ejections.load(), 1);
  EXPECT_FALSE(fleet.router->backend_healthy(victim));
  EXPECT_EQ(fleet.router->metrics().exhausted.load(), 0);

  // While ejected, requests for the victim's rooms go straight to the
  // survivor without paying a connect attempt to the dead backend.
  const int64_t retried_before = fleet.router->metrics().retried.load();
  ASSERT_TRUE(fleet.router
                  ->Route({.room = victim_room, .user = 3,
                           .deadline_ms = -1.0})
                  .status.ok());
  EXPECT_EQ(fleet.router->metrics().retried.load(), retried_before);
}

TEST(RouterTest, AllBackendsDeadYieldsUnavailableNotAHang) {
  RouterOptions options;
  options.max_attempts = 2;
  options.client.connect_timeout_ms = 200.0;
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/2, options);
  fleet.shards[0]->net->Shutdown();
  fleet.shards[1]->net->Shutdown();
  const FriendResponse response =
      fleet.router->Route({.room = 0, .user = 1, .deadline_ms = -1.0});
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(fleet.router->metrics().exhausted.load(), 1);
}

TEST(RouterTest, ServerStatusesPassThroughWithoutRetry) {
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/2);
  // A degradation decision (here: invalid user) is the server's answer,
  // not a transport failure — retrying it on another shard would just
  // repeat the work and hide the error.
  const FriendResponse response =
      fleet.router->Route({.room = 0, .user = 999, .deadline_ms = -1.0});
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidData);
  EXPECT_EQ(fleet.router->metrics().retried.load(), 0);
  EXPECT_EQ(fleet.router->metrics().ejections.load(), 0);
}

TEST(RouterTest, ProbeAllSeesDeadAndAliveBackends) {
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/2);
  fleet.router->ProbeAll();
  EXPECT_TRUE(fleet.router->backend_healthy(0));
  EXPECT_TRUE(fleet.router->backend_healthy(1));
  fleet.shards[0]->net->Shutdown();
  fleet.router->ProbeAll();
  EXPECT_FALSE(fleet.router->backend_healthy(0));
  EXPECT_TRUE(fleet.router->backend_healthy(1));
}

TEST(RouterTest, ConcurrentClientsSurviveAShardDeath) {
  // The TSan target: many threads in Route() while a backend dies and
  // gets ejected under them. Every request must come back answered —
  // failover means no thread observes a lost request.
  RouterOptions options;
  options.ejection_ms = 100.0;
  options.client.connect_timeout_ms = 500.0;
  TestFleet fleet(/*num_shards=*/2, /*rooms=*/4, options);

  const int kThreads = 4, kPerThread = 50;
  std::atomic<int> ok{0}, unavailable{0}, other{0};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fleet.shards[0]->net->Shutdown();
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerThread; ++i) {
        const FriendResponse response = fleet.router->Route(
            {.room = (c + i) % 4, .user = (3 * c + i) % 16,
             .deadline_ms = -1.0});
        if (response.status.ok())
          ok.fetch_add(1);
        else if (response.status.code() == StatusCode::kUnavailable)
          unavailable.fetch_add(1);
        else
          other.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  killer.join();

  // Shard 1 stays up the whole time, so failover answers everything:
  // nothing may be lost and nothing may exhaust its attempts.
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(unavailable.load(), 0);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(fleet.router->metrics().routed.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace serve
}  // namespace after
