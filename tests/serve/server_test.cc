#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "core/poshgnn.h"
#include "gtest/gtest.h"

namespace after {
namespace serve {
namespace {

Dataset SmallDataset(int num_users = 16, int num_steps = 8) {
  DatasetConfig config;
  config.num_users = num_users;
  config.num_steps = num_steps;
  config.num_sessions = 2;
  config.seed = 654;
  return GenerateTimikLike(config);
}

std::vector<std::unique_ptr<Room>> MakeRooms(const Dataset& dataset,
                                             int count,
                                             Room::Mode mode =
                                                 Room::Mode::kLive) {
  std::vector<std::unique_ptr<Room>> rooms;
  for (int r = 0; r < count; ++r) {
    Room::Options options;
    options.id = r;
    options.mode = mode;
    options.seed = 50 + r;
    rooms.push_back(Room::Create(options, &dataset).value());
  }
  return rooms;
}

/// Thread-safe primary that sleeps for a configurable time, then
/// returns a correct-size (empty) recommendation.
class SlowRecommender : public Recommender {
 public:
  explicit SlowRecommender(double sleep_ms) : sleep_ms_(sleep_ms) {}
  std::string name() const override { return "Slow"; }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms_));
    return std::vector<bool>(context.positions->size(), false);
  }

 private:
  double sleep_ms_;
};

/// Thread-safe primary that always returns a wrong-size vector.
class MisbehavingRecommender : public Recommender {
 public:
  std::string name() const override { return "Broken"; }
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext&) override { return {}; }
};

TEST(ServerTest, AnswersRequestsAgainstTheSnapshot) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = -1.0;  // no deadline
  RecommendationServer server(
      MakeRooms(dataset, 2),
      [] { return std::make_unique<NearestRecommender>(5); }, options);

  FriendRequest request;
  request.room = 1;
  request.user = 3;
  const FriendResponse response = server.Handle(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(static_cast<int>(response.recommended.size()),
            dataset.num_users());
  EXPECT_FALSE(response.recommended[3]);  // own slot cleared
  EXPECT_FALSE(response.used_fallback);
  EXPECT_EQ(response.tick, 0);
  int selected = 0;
  for (bool b : response.recommended) selected += b ? 1 : 0;
  EXPECT_EQ(selected, 5);
  EXPECT_EQ(server.metrics().responses_ok.load(), 1);
  EXPECT_GT(response.latency_ms, 0.0);
}

TEST(ServerTest, BadRoomAndUserAreErrors) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [] { return std::make_unique<NearestRecommender>(5); }, options);

  EXPECT_EQ(server.Handle({.room = 7, .user = 0}).status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Handle({.room = 0, .user = 999}).status.code(),
            StatusCode::kInvalidData);
  EXPECT_EQ(server.metrics().errors.load(), 2);
}

TEST(ServerTest, FullQueueShedsWithResourceExhausted) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [] { return std::make_unique<SlowRecommender>(50.0); }, options);

  // Fire-and-record asynchronous submissions: the first occupies the
  // worker, the next fills the queue slot, and eventually one is shed.
  std::mutex mutex;
  std::condition_variable cv;
  int done = 0;
  bool saw_shed = false;
  const int total = 8;
  for (int i = 0; i < total; ++i) {
    server.Submit({.room = 0, .user = 1},
                  [&](const FriendResponse& response) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (response.status.code() ==
                        StatusCode::kResourceExhausted)
                      saw_shed = true;
                    if (++done == total) cv.notify_one();
                  });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done == total; });
  EXPECT_TRUE(saw_shed);
  EXPECT_GT(server.metrics().shed.load(), 0);
  EXPECT_EQ(server.metrics().requests_submitted.load(), total);
}

TEST(ServerTest, DeadlineExpiredInQueueReturnsTimeout) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 1;
  options.queue_capacity = 16;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [] { return std::make_unique<SlowRecommender>(60.0); }, options);

  // Occupy the single worker with a no-deadline request, then enqueue a
  // request whose 1 ms budget must expire while it waits.
  std::mutex mutex;
  std::condition_variable cv;
  bool first_done = false;
  server.Submit({.room = 0, .user = 1, .deadline_ms = -1.0},
                [&](const FriendResponse&) {
                  std::lock_guard<std::mutex> lock(mutex);
                  first_done = true;
                  cv.notify_one();
                });
  const FriendResponse late =
      server.Handle({.room = 0, .user = 2, .deadline_ms = 1.0});
  EXPECT_EQ(late.status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(late.recommended.empty());
  EXPECT_EQ(server.metrics().timeouts.load(), 1);
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return first_done; });
}

TEST(ServerTest, SlowPrimaryDegradesToNearestFallback) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.num_threads = 1;
  options.fallback_k = 4;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [] { return std::make_unique<SlowRecommender>(30.0); }, options);

  const FriendResponse response =
      server.Handle({.room = 0, .user = 2, .deadline_ms = 10.0});
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.used_fallback);
  // The answer is the fallback's, not the slow primary's all-false one.
  int selected = 0;
  for (bool b : response.recommended) selected += b ? 1 : 0;
  EXPECT_EQ(selected, 4);
  EXPECT_EQ(server.metrics().fallbacks_deadline.load(), 1);
  EXPECT_EQ(server.metrics().timeouts.load(), 0);
}

TEST(ServerTest, MisbehavingPrimaryDegradesToNearestFallback) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.default_deadline_ms = -1.0;
  options.fallback_k = 3;
  RecommendationServer server(
      MakeRooms(dataset, 1),
      [] { return std::make_unique<MisbehavingRecommender>(); }, options);

  const FriendResponse response = server.Handle({.room = 0, .user = 0});
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.used_fallback);
  EXPECT_EQ(server.metrics().fallbacks_misbehaved.load(), 1);
}

TEST(ServerTest, ThreadSafePrimaryIsSharedStatefulIsPerStream) {
  const Dataset dataset = SmallDataset();
  ServerOptions options;
  options.default_deadline_ms = -1.0;

  std::atomic<int> nearest_built{0};
  RecommendationServer shared_server(
      MakeRooms(dataset, 2),
      [&nearest_built] {
        nearest_built.fetch_add(1);
        return std::make_unique<NearestRecommender>(5);
      },
      options);
  EXPECT_TRUE(shared_server.primary_is_shared());
  for (int user = 0; user < 6; ++user)
    ASSERT_TRUE(shared_server.Handle({.room = user % 2, .user = user})
                    .status.ok());
  // Only the construction-time probe: thread-safe models are shared.
  EXPECT_EQ(nearest_built.load(), 1);

  std::atomic<int> poshgnn_built{0};
  RecommendationServer stateful_server(
      MakeRooms(dataset, 2),
      [&poshgnn_built] {
        poshgnn_built.fetch_add(1);
        return std::make_unique<Poshgnn>(PoshgnnConfig{});
      },
      options);
  EXPECT_FALSE(stateful_server.primary_is_shared());
  for (int user = 0; user < 6; ++user)
    ASSERT_TRUE(stateful_server.Handle({.room = user % 2, .user = user})
                    .status.ok());
  // Probe + one instance per distinct (room, user) stream.
  EXPECT_EQ(poshgnn_built.load(), 1 + 6);
  // A repeat request reuses its stream's instance.
  ASSERT_TRUE(stateful_server.Handle({.room = 0, .user = 0}).status.ok());
  EXPECT_EQ(poshgnn_built.load(), 1 + 6);
}

TEST(ServerTest, ConcurrentLoadCompletesEveryAdmittedRequest) {
  const Dataset dataset = SmallDataset(20, 4);
  ServerOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.default_deadline_ms = -1.0;
  RecommendationServer server(
      MakeRooms(dataset, 4),
      [] { return std::make_unique<Poshgnn>(PoshgnnConfig{}); }, options);

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.TickAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const int kClients = 4, kPerClient = 25;
  std::atomic<int> completions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const FriendResponse response = server.Handle(
            {.room = (c + i) % 4, .user = (7 * c + i) % 20});
        if (response.status.ok()) completions.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  ticker.join();
  server.Shutdown();

  EXPECT_EQ(completions.load(), kClients * kPerClient);
  EXPECT_EQ(server.metrics().shed.load(), 0);
  EXPECT_EQ(server.metrics().queue_depth.load(), 0);
  EXPECT_EQ(server.metrics().responses_ok.load(), kClients * kPerClient);
}

}  // namespace
}  // namespace serve
}  // namespace after
