#include "serve/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace after {
namespace serve {
namespace {

/// Reusable gate: lets a test hold a worker hostage until released.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, SingleWorkerRunsTasksInFifoOrder) {
  std::vector<int> order;
  std::mutex order_mutex;
  {
    ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.TrySubmit([i, &order, &order_mutex] {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(i);
      }));
    }
    pool.Shutdown();
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  Gate gate;
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/16);
  ASSERT_TRUE(pool.TrySubmit([&] {
    gate.Wait();
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  gate.Open();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  Gate gate;
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/2);
  std::atomic<int> ran{0};
  // Occupies the single worker...
  ASSERT_TRUE(pool.TrySubmit([&] {
    gate.Wait();
    ran.fetch_add(1);
  }));
  // ...so these two fill the queue to capacity...
  // (give the worker a moment to dequeue the blocker first)
  while (pool.queue_depth() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  ASSERT_TRUE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  // ...and the next admission is shed.
  EXPECT_FALSE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  gate.Open();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, ConcurrentWorkersCompleteEverything) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(/*num_threads=*/4, /*queue_capacity=*/1024);
    int admitted = 0;
    for (int i = 0; i < 500; ++i)
      if (pool.TrySubmit([&counter] { counter.fetch_add(1); })) ++admitted;
    pool.Shutdown();
    EXPECT_EQ(counter.load(), admitted);
    EXPECT_GT(admitted, 0);
  }
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/4);
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

}  // namespace
}  // namespace serve
}  // namespace after
