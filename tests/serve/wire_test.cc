#include "serve/wire.h"

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace after {
namespace serve {
namespace wire {
namespace {

FriendRequest SampleRequest() {
  FriendRequest request;
  request.room = 7;
  request.user = 123;
  request.deadline_ms = 41.5;
  return request;
}

FriendResponse SampleResponse() {
  FriendResponse response;
  response.status = OkStatus();
  response.recommended = {true, false, true, true, false, false, true,
                          false, true};  // 9 bits: crosses a byte boundary
  response.used_fallback = true;
  response.tick = 42;
  response.latency_ms = 3.25;
  return response;
}

/// Encodes, extracts, and decodes in one go; EXPECTs a clean path.
RequestFrame RoundTripRequest(uint64_t id, const FriendRequest& request) {
  std::string bytes;
  AppendRequestFrame(id, request, &bytes);
  Frame frame;
  size_t consumed = 0;
  EXPECT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, MessageType::kRequest);
  auto decoded = DecodeRequest(frame.payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? decoded.value() : RequestFrame{};
}

TEST(WireTest, RequestRoundTrips) {
  const FriendRequest request = SampleRequest();
  const RequestFrame decoded = RoundTripRequest(99, request);
  EXPECT_EQ(decoded.id, 99u);
  EXPECT_EQ(decoded.request.room, request.room);
  EXPECT_EQ(decoded.request.user, request.user);
  EXPECT_DOUBLE_EQ(decoded.request.deadline_ms, request.deadline_ms);
}

TEST(WireTest, NegativeFieldsRoundTrip) {
  FriendRequest request;
  request.room = -3;
  request.user = -1;
  request.deadline_ms = -1.0;  // "no deadline"
  const RequestFrame decoded = RoundTripRequest(0, request);
  EXPECT_EQ(decoded.request.room, -3);
  EXPECT_EQ(decoded.request.user, -1);
  EXPECT_DOUBLE_EQ(decoded.request.deadline_ms, -1.0);
}

TEST(WireTest, ResponseRoundTrips) {
  const FriendResponse response = SampleResponse();
  std::string bytes;
  AppendResponseFrame(1234567890123ull, response, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kResponse);
  auto decoded = DecodeResponse(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 1234567890123ull);
  const FriendResponse& out = decoded.value().response;
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.recommended, response.recommended);
  EXPECT_TRUE(out.used_fallback);
  EXPECT_EQ(out.tick, 42);
  EXPECT_DOUBLE_EQ(out.latency_ms, 3.25);
}

TEST(WireTest, ErrorResponseCarriesCodeAndMessage) {
  FriendResponse response;
  response.status = ResourceExhaustedError("queue full; load shed");
  std::string bytes;
  AppendResponseFrame(5, response, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  auto decoded = DecodeResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().response.status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.value().response.status.message(),
            "queue full; load shed");
  EXPECT_TRUE(decoded.value().response.recommended.empty());
}

TEST(WireTest, PingPongRoundTrip) {
  std::string bytes;
  AppendPingFrame(77, &bytes);
  AppendPongFrame(78, &bytes);  // two frames back to back
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kPing);
  EXPECT_EQ(DecodePingPong(frame.payload).value(), 77u);
  bytes.erase(0, consumed);
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kPong);
  EXPECT_EQ(DecodePingPong(frame.payload).value(), 78u);
  bytes.erase(0, consumed);
  EXPECT_TRUE(bytes.empty());
}

TEST(WireTest, RoomAssignRoundTripsWithStateBlob) {
  const std::string state("snapshot\0with\xFF" "binary", 20);
  std::string bytes;
  AppendRoomAssignFrame(31, 7, 12, /*primary=*/true, state, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kRoomAssign);
  auto decoded = DecodeRoomAssign(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 31u);
  EXPECT_EQ(decoded.value().room, 7);
  EXPECT_EQ(decoded.value().epoch, 12u);
  EXPECT_TRUE(decoded.value().primary);
  EXPECT_EQ(decoded.value().state, state);
}

TEST(WireTest, RoomAssignEmptyStateMeansFreshRoom) {
  std::string bytes;
  AppendRoomAssignFrame(1, 0, 1, /*primary=*/false, "", &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  auto decoded = DecodeRoomAssign(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().primary);
  EXPECT_TRUE(decoded.value().state.empty());
}

TEST(WireTest, RoomReleaseAndNotOwnerRoundTrip) {
  std::string bytes;
  AppendRoomReleaseFrame(8, 3, 99, &bytes);
  AppendNotOwnerFrame(9, 4, 100, &bytes);  // back to back
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kRoomRelease);
  auto release = DecodeRoomRelease(frame.payload);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  EXPECT_EQ(release.value().id, 8u);
  EXPECT_EQ(release.value().room, 3);
  EXPECT_EQ(release.value().epoch, 99u);
  bytes.erase(0, consumed);
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kNotOwner);
  auto not_owner = DecodeNotOwner(frame.payload);
  ASSERT_TRUE(not_owner.ok()) << not_owner.status().ToString();
  EXPECT_EQ(not_owner.value().id, 9u);
  EXPECT_EQ(not_owner.value().room, 4);
  EXPECT_EQ(not_owner.value().epoch, 100u);
}

TEST(WireTest, RoomRecoverQueryAndReportRoundTrip) {
  std::vector<RecoveredRoom> rooms;
  rooms.push_back({/*room=*/3, /*epoch=*/41, /*primary=*/true, /*tick=*/812});
  rooms.push_back({/*room=*/9, /*epoch=*/40, /*primary=*/false, /*tick=*/0});
  std::string bytes;
  AppendRoomRecoverQueryFrame(55, &bytes);
  AppendRoomRecoverReportFrame(55, rooms, &bytes);  // back to back
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kRoomRecover);
  EXPECT_EQ(DecodeRoomRecoverQuery(frame.payload).value(), 55u);
  bytes.erase(0, consumed);
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, MessageType::kRoomRecover);
  auto report = DecodeRoomRecoverReport(frame.payload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().id, 55u);
  ASSERT_EQ(report.value().rooms.size(), 2u);
  EXPECT_EQ(report.value().rooms[0].room, 3);
  EXPECT_EQ(report.value().rooms[0].epoch, 41u);
  EXPECT_TRUE(report.value().rooms[0].primary);
  EXPECT_EQ(report.value().rooms[0].tick, 812);
  EXPECT_EQ(report.value().rooms[1].room, 9);
  EXPECT_FALSE(report.value().rooms[1].primary);
}

TEST(WireTest, EmptyRecoverReportIsValid) {
  // A shard with no durable dir (or an empty one) reports zero rooms;
  // the router treats that as "recovers nothing", not an error.
  std::string bytes;
  AppendRoomRecoverReportFrame(7, {}, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  auto report = DecodeRoomRecoverReport(frame.payload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().id, 7u);
  EXPECT_TRUE(report.value().rooms.empty());
}

TEST(WireTest, RecoverReportTruncationsFailDecodeAllOrNothing) {
  std::vector<RecoveredRoom> rooms;
  rooms.push_back({/*room=*/1, /*epoch=*/2, /*primary=*/true, /*tick=*/3});
  std::string bytes;
  AppendRoomRecoverReportFrame(4, rooms, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    EXPECT_FALSE(DecodeRoomRecoverReport(
                     std::string_view(frame.payload).substr(0, cut))
                     .ok())
        << "report cut=" << cut;
  }
}

TEST(WireTest, RecoverReportNonBooleanPrimaryIsRejected) {
  std::vector<RecoveredRoom> rooms;
  rooms.push_back({/*room=*/1, /*epoch=*/2, /*primary=*/true, /*tick=*/3});
  std::string bytes;
  AppendRoomRecoverReportFrame(4, rooms, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  // Entry layout after the id(8) + count(4): room(4) epoch(8) primary(1).
  frame.payload[8 + 4 + 4 + 8] = 2;
  EXPECT_FALSE(DecodeRoomRecoverReport(frame.payload).ok());
}

TEST(WireTest, ControlPayloadTruncationsFailDecodeAllOrNothing) {
  // Same contract as the request/response payloads: any cut inside the
  // payload decodes to an error, never to a partial struct.
  std::string assign;
  AppendRoomAssignFrame(5, 2, 7, /*primary=*/true, "state-bytes", &assign);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(assign, &frame, &consumed).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRoomAssign(std::string_view(frame.payload).substr(0, cut)).ok())
        << "assign cut=" << cut;
  }
  std::string release;
  AppendRoomReleaseFrame(5, 2, 7, &release);
  ASSERT_TRUE(ExtractFrame(release, &frame, &consumed).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRoomRelease(std::string_view(frame.payload).substr(0, cut)).ok())
        << "release cut=" << cut;
  }
}

TEST(WireTest, EveryTruncationIsIncompleteNeverGarbage) {
  // A truncated frame must never decode and never error at the framing
  // layer: every proper prefix reports "incomplete" (OK, consumed 0).
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    size_t consumed = 1;
    const Status status =
        ExtractFrame(std::string_view(bytes).substr(0, cut), &frame,
                     &consumed);
    EXPECT_TRUE(status.ok()) << "cut=" << cut << ": " << status.ToString();
    EXPECT_EQ(consumed, 0u) << "cut=" << cut;
  }
}

TEST(WireTest, BadMagicIsRejected) {
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  bytes[0] = 'X';
  Frame frame;
  size_t consumed = 0;
  const Status status = ExtractFrame(bytes, &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(WireTest, WrongVersionIsRejected) {
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  Frame frame;
  size_t consumed = 0;
  const Status status = ExtractFrame(bytes, &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(WireTest, UnknownTypeAndReservedBitsAreRejected) {
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  std::string broken_type = bytes;
  broken_type[5] = 99;
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(broken_type, &frame, &consumed).code(),
            StatusCode::kInvalidArgument);
  std::string broken_reserved = bytes;
  broken_reserved[6] = 1;
  EXPECT_EQ(ExtractFrame(broken_reserved, &frame, &consumed).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // Header declaring a payload over the cap must fail immediately even
  // though the bytes "aren't there yet" — a hostile length prefix must
  // not park the connection in "incomplete" forever or allocate.
  std::string bytes;
  AppendPingFrame(1, &bytes);
  const uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i)
    bytes[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  Frame frame;
  size_t consumed = 0;
  const Status status = ExtractFrame(bytes, &frame, &consumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("oversized"), std::string::npos);
}

TEST(WireTest, TruncatedPayloadsFailDecodeAllOrNothing) {
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    auto decoded = DecodeRequest(
        std::string_view(frame.payload).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireTest, TrailingBytesFailDecode) {
  std::string bytes;
  AppendRequestFrame(3, SampleRequest(), &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  frame.payload.push_back('\0');
  EXPECT_EQ(DecodeRequest(frame.payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, ResponseMessageLengthCannotExceedPayload) {
  FriendResponse response;
  response.status = NotFoundError("nope");
  std::string bytes;
  AppendResponseFrame(9, response, &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  // The message-length word sits at payload offset 24; inflate it.
  for (int i = 0; i < 4; ++i)
    frame.payload[24 + i] = static_cast<char>(0xff);
  auto decoded = DecodeResponse(frame.payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, UnknownStatusCodeByteIsRejected) {
  std::string bytes;
  AppendResponseFrame(9, SampleResponse(), &bytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(bytes, &frame, &consumed).ok());
  frame.payload[8] = 120;  // code byte: way outside the enum
  auto decoded = DecodeResponse(frame.payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, ByteFlipFuzzNeverCrashesAndNeverOverreads) {
  // Seeded fuzz loop: flip one byte of a valid two-frame stream, then
  // run the full extract+decode pipeline. The contract under corruption
  // is no crash, no hang, and — when parsing still succeeds — fields
  // that respect the declared bounds.
  std::string pristine;
  AppendRequestFrame(21, SampleRequest(), &pristine);
  AppendResponseFrame(21, SampleResponse(), &pristine);
  Rng rng(2024);
  int parsed_ok = 0, rejected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string bytes = pristine;
    const int index = rng.UniformInt(static_cast<int>(bytes.size()));
    const int bit = rng.UniformInt(8);
    bytes[index] = static_cast<char>(bytes[index] ^ (1 << bit));
    std::string_view view = bytes;
    bool stream_ok = true;
    while (stream_ok && !view.empty()) {
      Frame frame;
      size_t consumed = 0;
      const Status status = ExtractFrame(view, &frame, &consumed);
      if (!status.ok()) {
        ++rejected;
        stream_ok = false;
        break;
      }
      if (consumed == 0) break;  // incomplete tail; a reader would wait
      view.remove_prefix(consumed);
      switch (frame.type) {
        case MessageType::kRequest: {
          auto decoded = DecodeRequest(frame.payload);
          if (decoded.ok()) ++parsed_ok; else ++rejected;
          break;
        }
        case MessageType::kResponse: {
          auto decoded = DecodeResponse(frame.payload);
          if (decoded.ok()) {
            ++parsed_ok;
            EXPECT_LE(decoded.value().response.recommended.size(),
                      kMaxRecommendedBits);
          } else {
            ++rejected;
          }
          break;
        }
        case MessageType::kPing:
        case MessageType::kPong: {
          auto decoded = DecodePingPong(frame.payload);
          if (decoded.ok()) ++parsed_ok; else ++rejected;
          break;
        }
        default:  // a flipped type byte landing on a control frame
          ++rejected;
          break;
      }
    }
  }
  // Most single-bit flips must be caught; payload-content flips (ids,
  // positions of bits) legitimately still parse.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed_ok, 0);
}

}  // namespace
}  // namespace wire
}  // namespace serve
}  // namespace after
