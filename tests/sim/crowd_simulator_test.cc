#include "sim/crowd_simulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

CrowdSimulator::AgentParams DefaultParams() {
  CrowdSimulator::AgentParams params;
  params.radius = 0.25;
  params.max_speed = 1.4;
  return params;
}

TEST(CrowdSimulatorTest, SingleAgentReachesGoal) {
  CrowdSimulator sim(0.1);
  const int a = sim.AddAgent(Vec2(0, 0), DefaultParams());
  sim.SetGoal(a, Vec2(5, 0));
  for (int step = 0; step < 100; ++step) sim.Step();
  EXPECT_TRUE(sim.ReachedGoal(a, 0.2));
}

TEST(CrowdSimulatorTest, AgentRespectsMaxSpeed) {
  CrowdSimulator sim(0.1);
  const int a = sim.AddAgent(Vec2(0, 0), DefaultParams());
  sim.SetGoal(a, Vec2(100, 0));
  for (int step = 0; step < 30; ++step) {
    sim.Step();
    EXPECT_LE(sim.Velocity(a).Norm(), 1.4 + 1e-9);
  }
}

TEST(CrowdSimulatorTest, StationaryWithoutGoal) {
  CrowdSimulator sim(0.1);
  const int a = sim.AddAgent(Vec2(2, 3), DefaultParams());
  for (int step = 0; step < 10; ++step) sim.Step();
  EXPECT_NEAR(sim.Position(a).x, 2.0, 1e-9);
  EXPECT_NEAR(sim.Position(a).y, 3.0, 1e-9);
}

TEST(CrowdSimulatorTest, HeadOnAgentsAvoidCollision) {
  CrowdSimulator sim(0.1);
  const int a = sim.AddAgent(Vec2(0, 0), DefaultParams());
  const int b = sim.AddAgent(Vec2(6, 0.01), DefaultParams());
  sim.SetGoal(a, Vec2(6, 0));
  sim.SetGoal(b, Vec2(0, 0));
  double min_distance = 1e9;
  for (int step = 0; step < 120; ++step) {
    sim.SetGoal(a, Vec2(6, 0));
    sim.SetGoal(b, Vec2(0, 0));
    sim.Step();
    min_distance =
        std::min(min_distance, Distance(sim.Position(a), sim.Position(b)));
  }
  // Bodies (r=0.25 each) must not interpenetrate significantly.
  EXPECT_GT(min_distance, 0.4);
  EXPECT_TRUE(sim.ReachedGoal(a, 0.5));
  EXPECT_TRUE(sim.ReachedGoal(b, 0.5));
}

TEST(CrowdSimulatorTest, CrossingAgentsAvoidCollision) {
  CrowdSimulator sim(0.1);
  const int a = sim.AddAgent(Vec2(-3, 0), DefaultParams());
  const int b = sim.AddAgent(Vec2(0, -3), DefaultParams());
  for (int step = 0; step < 100; ++step) {
    sim.SetGoal(a, Vec2(3, 0));
    sim.SetGoal(b, Vec2(0, 3));
    sim.Step();
    EXPECT_GT(Distance(sim.Position(a), sim.Position(b)), 0.35);
  }
}

TEST(CrowdSimulatorTest, CrowdedCircleSwapNoInterpenetration) {
  // Classic ORCA stress test: agents on a circle swap to antipodes.
  CrowdSimulator sim(0.1);
  const int n = 10;
  const double radius = 4.0;
  for (int i = 0; i < n; ++i) {
    // Slight angular stagger breaks the perfect symmetry that would
    // otherwise deadlock reciprocal avoidance at the center.
    const double angle = 2.0 * M_PI * i / n + 0.013 * i;
    sim.AddAgent(Vec2(radius * std::cos(angle), radius * std::sin(angle)),
                 DefaultParams());
  }
  double min_pair = 1e9;
  for (int step = 0; step < 400; ++step) {
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n + 0.013 * i + M_PI;
      sim.SetGoal(i,
                  Vec2(radius * std::cos(angle), radius * std::sin(angle)));
    }
    sim.Step();
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        min_pair =
            std::min(min_pair, Distance(sim.Position(i), sim.Position(j)));
  }
  // Allow slight numerical softness but no deep interpenetration of the
  // 0.5-separation bodies.
  EXPECT_GT(min_pair, 0.35);
  for (int i = 0; i < n; ++i) EXPECT_TRUE(sim.ReachedGoal(i, 1.0));
}

TEST(CrowdSimulatorTest, ExplicitPreferredVelocityUsedOnce) {
  CrowdSimulator sim(0.5);
  const int a = sim.AddAgent(Vec2(0, 0), DefaultParams());
  sim.SetPreferredVelocity(a, Vec2(1.0, 0.0));
  sim.Step();
  EXPECT_NEAR(sim.Position(a).x, 0.5, 1e-9);
  // Next step reverts to goal-seeking (goal = start position here, and
  // position has moved, so it walks back).
  sim.Step();
  EXPECT_LT(sim.Position(a).x, 0.5);
}

TEST(CrowdSimulatorTest, DeterministicEvolution) {
  auto run = [] {
    CrowdSimulator sim(0.1);
    sim.AddAgent(Vec2(0, 0), DefaultParams());
    sim.AddAgent(Vec2(3, 0.1), DefaultParams());
    sim.SetGoal(0, Vec2(3, 0));
    sim.SetGoal(1, Vec2(0, 0));
    for (int i = 0; i < 50; ++i) sim.Step();
    return sim.Position(0);
  };
  const Vec2 a = run();
  const Vec2 b = run();
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
}

}  // namespace
}  // namespace after
