#include "sim/xr_world.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

XrWorld::Config SmallConfig() {
  XrWorld::Config config;
  config.num_users = 20;
  config.vr_fraction = 0.5;
  config.num_steps = 30;
  config.room_side = 6.0;
  return config;
}

TEST(XrWorldTest, ShapesMatchConfig) {
  Rng rng(1);
  const XrWorld world = XrWorld::Generate(SmallConfig(), rng);
  EXPECT_EQ(world.num_users(), 20);
  EXPECT_EQ(world.num_steps(), 30);
  EXPECT_EQ(world.interfaces().size(), 20u);
  for (int t = 0; t < 30; ++t)
    EXPECT_EQ(world.PositionsAt(t).size(), 20u);
}

TEST(XrWorldTest, VrFractionRespected) {
  Rng rng(2);
  XrWorld::Config config = SmallConfig();
  config.num_users = 100;
  config.vr_fraction = 0.25;
  const XrWorld world = XrWorld::Generate(config, rng);
  int vr = 0;
  for (int u = 0; u < 100; ++u)
    if (world.interface_of(u) == Interface::kVR) ++vr;
  EXPECT_EQ(vr, 25);
}

TEST(XrWorldTest, AllVrWhenFractionOne) {
  Rng rng(3);
  XrWorld::Config config = SmallConfig();
  config.vr_fraction = 1.0;
  const XrWorld world = XrWorld::Generate(config, rng);
  for (int u = 0; u < config.num_users; ++u)
    EXPECT_EQ(world.interface_of(u), Interface::kVR);
}

TEST(XrWorldTest, AgentsActuallyMove) {
  Rng rng(4);
  const XrWorld world = XrWorld::Generate(SmallConfig(), rng);
  double total_displacement = 0.0;
  for (int u = 0; u < world.num_users(); ++u)
    total_displacement += Distance(world.PositionsAt(0)[u],
                                   world.PositionsAt(world.num_steps() - 1)[u]);
  EXPECT_GT(total_displacement / world.num_users(), 0.3);
}

TEST(XrWorldTest, MotionIsSmooth) {
  Rng rng(5);
  XrWorld::Config config = SmallConfig();
  const XrWorld world = XrWorld::Generate(config, rng);
  // Per-step displacement bounded by max_speed * time_step.
  const double limit = config.max_speed * config.time_step + 1e-9;
  for (int t = 1; t < world.num_steps(); ++t)
    for (int u = 0; u < world.num_users(); ++u)
      EXPECT_LE(Distance(world.PositionsAt(t)[u], world.PositionsAt(t - 1)[u]),
                limit);
}

TEST(XrWorldTest, StartPositionsInsideRoom) {
  Rng rng(6);
  const XrWorld world = XrWorld::Generate(SmallConfig(), rng);
  for (const auto& p : world.PositionsAt(0)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 6.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 6.0);
  }
}

TEST(XrWorldTest, DeterministicForSeed) {
  Rng rng_a(7), rng_b(7);
  const XrWorld a = XrWorld::Generate(SmallConfig(), rng_a);
  const XrWorld b = XrWorld::Generate(SmallConfig(), rng_b);
  for (int t = 0; t < a.num_steps(); ++t)
    for (int u = 0; u < a.num_users(); ++u) {
      EXPECT_DOUBLE_EQ(a.PositionsAt(t)[u].x, b.PositionsAt(t)[u].x);
      EXPECT_DOUBLE_EQ(a.PositionsAt(t)[u].y, b.PositionsAt(t)[u].y);
    }
}

TEST(XrWorldTest, BodiesDoNotDeeplyInterpenetrate) {
  Rng rng(8);
  XrWorld::Config config = SmallConfig();
  config.num_users = 12;
  config.room_side = 8.0;
  const XrWorld world = XrWorld::Generate(config, rng);
  // Skip the random initial placement; after a few ORCA steps agents
  // should maintain separation.
  for (int t = 5; t < world.num_steps(); ++t) {
    const auto& pos = world.PositionsAt(t);
    for (int i = 0; i < config.num_users; ++i)
      for (int j = i + 1; j < config.num_users; ++j)
        EXPECT_GT(Distance(pos[i], pos[j]), 0.25)
            << "step " << t << " pair " << i << "," << j;
  }
}

}  // namespace
}  // namespace after
