#include "tensor/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

/// Checks the analytic gradient of `build` (a scalar-valued tape function
/// of one parameter matrix) against central differences at `point`.
void CheckGradient(const std::function<Variable(const Variable&)>& build,
                   const Matrix& point, double tolerance = 1e-6) {
  Variable x = Variable::Parameter(point);
  Variable y = build(x);
  ASSERT_EQ(y.rows(), 1);
  ASSERT_EQ(y.cols(), 1);
  x.ZeroGrad();
  y.Backward();
  const Matrix analytic = x.grad();

  const Matrix numeric = NumericalGradient(
      [&](const Matrix& probe) {
        Variable p = Variable::Constant(probe);
        return build(p).value().At(0, 0);
      },
      point);
  EXPECT_TRUE(analytic.AllClose(numeric, tolerance))
      << "analytic: " << analytic.ToString()
      << "\nnumeric: " << numeric.ToString();
}

TEST(AutogradTest, ConstantHasNoGrad) {
  Variable c = Variable::Constant(Matrix(2, 2, 1.0));
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, ParameterTracksGrad) {
  Variable p = Variable::Parameter(Matrix(2, 2, 1.0));
  EXPECT_TRUE(p.requires_grad());
}

TEST(AutogradTest, SumGradientIsOnes) {
  Variable x = Variable::Parameter(Matrix(2, 3, 5.0));
  Variable y = Variable::Sum(x);
  EXPECT_DOUBLE_EQ(y.value().At(0, 0), 30.0);
  y.Backward();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 3, 1.0)));
}

TEST(AutogradTest, AddGradient) {
  Rng rng(1);
  const Matrix point = Matrix::Randn(3, 2, 1.0, rng);
  const Matrix other = Matrix::Randn(3, 2, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(x + Variable::Constant(other));
      },
      point);
}

TEST(AutogradTest, SubGradientBothSides) {
  Rng rng(2);
  const Matrix point = Matrix::Randn(2, 2, 1.0, rng);
  const Matrix other = Matrix::Randn(2, 2, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::Constant(other) - x);
      },
      point);
}

TEST(AutogradTest, ScalarMulGradient) {
  Rng rng(3);
  const Matrix point = Matrix::Randn(2, 3, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) { return Variable::Sum(2.5 * x); }, point);
}

TEST(AutogradTest, MatMulGradientLeft) {
  Rng rng(4);
  const Matrix point = Matrix::Randn(3, 4, 1.0, rng);
  const Matrix right = Matrix::Randn(4, 2, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(
            Variable::MatMul(x, Variable::Constant(right)));
      },
      point);
}

TEST(AutogradTest, MatMulGradientRight) {
  Rng rng(5);
  const Matrix point = Matrix::Randn(4, 2, 1.0, rng);
  const Matrix left = Matrix::Randn(3, 4, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::MatMul(Variable::Constant(left), x));
      },
      point);
}

TEST(AutogradTest, MatMulGradientBothOperandsSameParam) {
  Rng rng(6);
  const Matrix point = Matrix::Randn(3, 3, 0.5, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::MatMul(x, x));
      },
      point, 1e-5);
}

TEST(AutogradTest, HadamardGradient) {
  Rng rng(7);
  const Matrix point = Matrix::Randn(3, 3, 1.0, rng);
  const Matrix other = Matrix::Randn(3, 3, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(
            Variable::Hadamard(x, Variable::Constant(other)));
      },
      point);
}

TEST(AutogradTest, HadamardSquareGradient) {
  Rng rng(8);
  const Matrix point = Matrix::Randn(2, 4, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::Hadamard(x, x));
      },
      point);
}

TEST(AutogradTest, ReluForwardAndGradient) {
  const Matrix point = Matrix::FromRows({{-2.0, -0.5, 0.5, 2.0}});
  Variable x = Variable::Parameter(point);
  Variable y = Variable::Relu(x);
  EXPECT_DOUBLE_EQ(y.value().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.value().At(0, 3), 2.0);
  CheckGradient(
      [&](const Variable& v) { return Variable::Sum(Variable::Relu(v)); },
      point);
}

TEST(AutogradTest, SigmoidGradient) {
  Rng rng(9);
  const Matrix point = Matrix::Randn(3, 2, 2.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::Sigmoid(x));
      },
      point, 1e-5);
}

TEST(AutogradTest, SigmoidRange) {
  Rng rng(10);
  Variable x = Variable::Constant(Matrix::Randn(10, 10, 5.0, rng));
  const Matrix s = Variable::Sigmoid(x).value();
  for (int i = 0; i < s.size(); ++i) {
    EXPECT_GT(s[i], 0.0);
    EXPECT_LT(s[i], 1.0);
  }
}

TEST(AutogradTest, TanhGradient) {
  Rng rng(11);
  const Matrix point = Matrix::Randn(2, 2, 1.5, rng);
  CheckGradient(
      [&](const Variable& x) { return Variable::Sum(Variable::Tanh(x)); },
      point, 1e-5);
}

TEST(AutogradTest, AddScalarGradient) {
  Rng rng(12);
  const Matrix point = Matrix::Randn(2, 3, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::AddScalar(x, 3.7));
      },
      point);
}

TEST(AutogradTest, TransposeGradient) {
  Rng rng(13);
  const Matrix point = Matrix::Randn(3, 4, 1.0, rng);
  const Matrix mult = Matrix::Randn(3, 4, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::Hadamard(
            Variable::Transpose(x),
            Variable::Constant(mult.Transposed())));
      },
      point);
}

TEST(AutogradTest, ConcatColsGradient) {
  Rng rng(14);
  const Matrix point = Matrix::Randn(3, 2, 1.0, rng);
  const Matrix other = Matrix::Randn(3, 3, 1.0, rng);
  const Matrix weights = Matrix::Randn(3, 5, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        Variable cat = Variable::ConcatCols(x, Variable::Constant(other));
        return Variable::Sum(
            Variable::Hadamard(cat, Variable::Constant(weights)));
      },
      point);
}

TEST(AutogradTest, SliceColsGradient) {
  Rng rng(15);
  const Matrix point = Matrix::Randn(3, 5, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(Variable::SliceCols(x, 1, 3));
      },
      point);
}

TEST(AutogradTest, AddRowBroadcastGradientBase) {
  Rng rng(16);
  const Matrix point = Matrix::Randn(4, 3, 1.0, rng);
  const Matrix row = Matrix::Randn(1, 3, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(
            Variable::AddRowBroadcast(x, Variable::Constant(row)));
      },
      point);
}

TEST(AutogradTest, AddRowBroadcastGradientRow) {
  Rng rng(17);
  const Matrix base = Matrix::Randn(4, 3, 1.0, rng);
  const Matrix point = Matrix::Randn(1, 3, 1.0, rng);
  CheckGradient(
      [&](const Variable& x) {
        return Variable::Sum(
            Variable::AddRowBroadcast(Variable::Constant(base), x));
      },
      point);
}

TEST(AutogradTest, ChainedCompositeGradient) {
  // A small GCN-like composite: sum(sigmoid(relu(A x W1) W2)).
  Rng rng(18);
  const Matrix adjacency = Matrix::Randn(4, 4, 1.0, rng);
  const Matrix w2 = Matrix::Randn(3, 1, 1.0, rng);
  const Matrix point = Matrix::Randn(4, 3, 0.7, rng);
  CheckGradient(
      [&](const Variable& x) {
        Variable h = Variable::Relu(
            Variable::MatMul(Variable::Constant(adjacency), x));
        Variable out = Variable::Sigmoid(
            Variable::MatMul(h, Variable::Constant(w2)));
        return Variable::Sum(out);
      },
      point, 1e-5);
}

TEST(AutogradTest, QuadraticFormGradient) {
  // The POSHGNN occlusion penalty shape: rᵀ A r via Hadamard+MatMul.
  Rng rng(19);
  const Matrix adjacency = Matrix::Randn(5, 5, 1.0, rng);
  const Matrix point = Matrix::Randn(5, 1, 1.0, rng);
  CheckGradient(
      [&](const Variable& r) {
        return Variable::Sum(Variable::Hadamard(
            r, Variable::MatMul(Variable::Constant(adjacency), r)));
      },
      point, 1e-5);
}

TEST(AutogradTest, GradientAccumulatesOverMultipleUses) {
  // y = sum(x) + sum(x): each element's grad must be exactly 2.
  Variable x = Variable::Parameter(Matrix(2, 2, 1.0));
  Variable y = Variable::Sum(x) + Variable::Sum(x);
  y.Backward();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 2.0)));
}

TEST(AutogradTest, ZeroGradResets) {
  Variable x = Variable::Parameter(Matrix(2, 2, 1.0));
  Variable y = Variable::Sum(x);
  y.Backward();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 1.0)));
  x.ZeroGrad();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 0.0)));
}

TEST(AutogradTest, BackwardTwiceAccumulates) {
  Variable x = Variable::Parameter(Matrix(1, 1, 3.0));
  Variable y = Variable::Sum(Variable::Hadamard(x, x));
  y.Backward();
  y.Backward();
  EXPECT_NEAR(x.grad().At(0, 0), 12.0, 1e-12);  // 2 * (2x) with x=3
}

TEST(AutogradTest, LongChainDoesNotOverflowStack) {
  // Emulates BPTT over many steps: a 400-op chain must backprop fine.
  Variable x = Variable::Parameter(Matrix(1, 1, 1.0));
  Variable h = x;
  for (int i = 0; i < 400; ++i) h = Variable::AddScalar(0.999 * h, 0.001);
  Variable y = Variable::Sum(h);
  y.Backward();
  EXPECT_NEAR(x.grad().At(0, 0), std::pow(0.999, 400), 1e-9);
}

TEST(AutogradTest, DiamondDependencyGradient) {
  Rng rng(20);
  const Matrix point = Matrix::Randn(3, 3, 0.6, rng);
  CheckGradient(
      [&](const Variable& x) {
        Variable a = Variable::Relu(x);
        Variable b = Variable::Sigmoid(x);
        return Variable::Sum(Variable::Hadamard(a, b));
      },
      point, 1e-5);
}

TEST(AutogradTest, SetValuePreservesLeafStatus) {
  Variable x = Variable::Parameter(Matrix(2, 2, 1.0));
  x.SetValue(Matrix(2, 2, 5.0));
  EXPECT_DOUBLE_EQ(x.value().At(0, 0), 5.0);
  Variable y = Variable::Sum(x);
  y.Backward();
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 1.0)));
}

TEST(AutogradTest, NumericalGradientSanity) {
  // d/dx sum(x^2) at x = [1, 2] is [2, 4].
  const Matrix point = Matrix::FromRows({{1.0, 2.0}});
  const Matrix grad = NumericalGradient(
      [](const Matrix& m) {
        double total = 0.0;
        for (int i = 0; i < m.size(); ++i) total += m[i] * m[i];
        return total;
      },
      point);
  EXPECT_NEAR(grad.At(0, 0), 2.0, 1e-6);
  EXPECT_NEAR(grad.At(0, 1), 4.0, 1e-6);
}

}  // namespace
}  // namespace after
