#include "tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace after {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.size(), 0);
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 0.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 3.5);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 3.5);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(eye.At(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, ColumnVector) {
  Matrix v = Matrix::ColumnVector({1.0, 2.0, 3.0});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 1);
  EXPECT_DOUBLE_EQ(v.At(2, 0), 3.0);
}

TEST(MatrixTest, AdditionSubtraction) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix sum = a + b;
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum.At(1, 1), 12.0);
  EXPECT_DOUBLE_EQ(diff.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(diff.At(1, 1), 4.0);
}

TEST(MatrixTest, ScalarMultiply) {
  Matrix a = Matrix::FromRows({{1.0, -2.0}});
  Matrix scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(scaled.At(0, 1), -6.0);
  Matrix scaled2 = -1.0 * a;
  EXPECT_DOUBLE_EQ(scaled2.At(0, 0), -1.0);
}

TEST(MatrixTest, Hadamard) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{2.0, 0.5}, {1.0, -1.0}});
  Matrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(h.At(1, 1), -4.0);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 2.0);
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 4);
  for (int r = 0; r < 2; ++r)
    for (int col = 0; col < 4; ++col) EXPECT_DOUBLE_EQ(c.At(r, col), 6.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a = Matrix::Randn(5, 5, 1.0, rng);
  EXPECT_TRUE(a.MatMul(Matrix::Identity(5)).AllClose(a));
  EXPECT_TRUE(Matrix::Identity(5).MatMul(a).AllClose(a));
}

TEST(MatrixTest, MatMulAssociativity) {
  Rng rng(5);
  Matrix a = Matrix::Randn(3, 4, 1.0, rng);
  Matrix b = Matrix::Randn(4, 5, 1.0, rng);
  Matrix c = Matrix::Randn(5, 2, 1.0, rng);
  EXPECT_TRUE(a.MatMul(b).MatMul(c).AllClose(a.MatMul(b.MatMul(c)), 1e-9));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(7);
  Matrix a = Matrix::Randn(4, 6, 1.0, rng);
  EXPECT_TRUE(a.Transposed().Transposed().AllClose(a));
  EXPECT_EQ(a.Transposed().rows(), 6);
  EXPECT_EQ(a.Transposed().cols(), 4);
}

TEST(MatrixTest, TransposeOfProduct) {
  Rng rng(9);
  Matrix a = Matrix::Randn(3, 4, 1.0, rng);
  Matrix b = Matrix::Randn(4, 5, 1.0, rng);
  EXPECT_TRUE(a.MatMul(b).Transposed().AllClose(
      b.Transposed().MatMul(a.Transposed()), 1e-9));
}

TEST(MatrixTest, MapAppliesFunction) {
  Matrix a = Matrix::FromRows({{-1.0, 4.0}});
  Matrix mapped = a.Map([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(mapped.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(mapped.At(0, 1), 16.0);
}

TEST(MatrixTest, SumMeanNorm) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = Matrix::FromRows({{1.0}, {2.0}});
  Matrix b = Matrix::FromRows({{3.0, 4.0}, {5.0, 6.0}});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 5.0);
}

TEST(MatrixTest, SliceCols) {
  Matrix a = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Matrix s = a.SliceCols(1, 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 6.0);
}

TEST(MatrixTest, ConcatThenSliceRecovers) {
  Rng rng(11);
  Matrix a = Matrix::Randn(3, 2, 1.0, rng);
  Matrix b = Matrix::Randn(3, 5, 1.0, rng);
  Matrix c = a.ConcatCols(b);
  EXPECT_TRUE(c.SliceCols(0, 2).AllClose(a));
  EXPECT_TRUE(c.SliceCols(2, 5).AllClose(b));
}

TEST(MatrixTest, RowAndCol) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a.Row(1).At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.Col(1).At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.Col(1).At(1, 0), 4.0);
}

TEST(MatrixTest, EqualityAndAllClose) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}});
  Matrix b = Matrix::FromRows({{1.0, 2.0}});
  Matrix c = Matrix::FromRows({{1.0, 2.0 + 1e-12}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.AllClose(c, 1e-9));
  EXPECT_FALSE(a.AllClose(Matrix(1, 3)));
}

TEST(MatrixTest, FillOverwrites) {
  Matrix a(2, 2, 1.0);
  a.Fill(7.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 7.0);
}

TEST(MatrixTest, RandnStatistics) {
  Rng rng(13);
  Matrix m = Matrix::Randn(100, 100, 2.0, rng);
  EXPECT_NEAR(m.Mean(), 0.0, 0.05);
  double sum_sq = 0.0;
  for (int i = 0; i < m.size(); ++i) sum_sq += m[i] * m[i];
  EXPECT_NEAR(sum_sq / m.size(), 4.0, 0.2);
}

TEST(MatrixTest, DistributivityProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = Matrix::Randn(4, 3, 1.0, rng);
    Matrix b = Matrix::Randn(3, 5, 1.0, rng);
    Matrix c = Matrix::Randn(3, 5, 1.0, rng);
    EXPECT_TRUE(a.MatMul(b + c).AllClose(a.MatMul(b) + a.MatMul(c), 1e-9));
  }
}

}  // namespace
}  // namespace after
