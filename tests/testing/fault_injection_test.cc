#include "testing/fault_injection.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset_io.h"

namespace after {
namespace testing {
namespace {

namespace fs = std::filesystem;

Dataset SmallDataset(uint64_t seed = 17) {
  DatasetConfig config;
  config.num_users = 10;
  config.num_steps = 6;
  config.num_sessions = 2;
  config.room_side = 5.0;
  config.seed = seed;
  return GenerateTimikLike(config);
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("after_fault_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    ASSERT_TRUE(SaveDatasetChecked(SmallDataset(), dir_.string()).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FaultInjectionTest, InjectionIsDeterministicForASeed) {
  const fs::path other = dir_.string() + "_twin";
  fs::remove_all(other);
  ASSERT_TRUE(SaveDatasetChecked(SmallDataset(), other.string()).ok());

  for (DatasetFileFault fault : kAllDatasetFileFaults) {
    Rng rng_a(99);
    Rng rng_b(99);
    std::string victim_a;
    std::string victim_b;
    ASSERT_TRUE(
        InjectDatasetFileFault(dir_.string(), fault, rng_a, &victim_a).ok())
        << DatasetFileFaultName(fault);
    ASSERT_TRUE(
        InjectDatasetFileFault(other.string(), fault, rng_b, &victim_b).ok())
        << DatasetFileFaultName(fault);
    EXPECT_EQ(victim_a, victim_b) << DatasetFileFaultName(fault);
    if (fault != DatasetFileFault::kMissingFile) {
      EXPECT_EQ(ReadFile(dir_ / victim_a), ReadFile(other / victim_b))
          << DatasetFileFaultName(fault);
    }
    // Re-seed with fresh copies for the next fault class.
    fs::remove_all(dir_);
    fs::remove_all(other);
    ASSERT_TRUE(SaveDatasetChecked(SmallDataset(), dir_.string()).ok());
    ASSERT_TRUE(SaveDatasetChecked(SmallDataset(), other.string()).ok());
  }
  fs::remove_all(other);
}

TEST_F(FaultInjectionTest, TruncateShortensTheVictim) {
  Rng rng(3);
  std::string victim;
  const auto before_sizes = [&] {
    std::uintmax_t total = 0;
    for (const auto& entry : fs::directory_iterator(dir_))
      total += fs::file_size(entry.path());
    return total;
  };
  const std::uintmax_t before = before_sizes();
  ASSERT_TRUE(InjectDatasetFileFault(dir_.string(),
                                     DatasetFileFault::kTruncateFile, rng,
                                     &victim)
                  .ok());
  EXPECT_FALSE(victim.empty());
  EXPECT_LT(before_sizes(), before);
}

TEST_F(FaultInjectionTest, NanValueWritesANanToken) {
  Rng rng(4);
  std::string victim;
  ASSERT_TRUE(
      InjectDatasetFileFault(dir_.string(), DatasetFileFault::kNanValue, rng,
                             &victim)
          .ok());
  EXPECT_NE(victim, "meta.txt");
  EXPECT_NE(victim, "social.txt");
  EXPECT_NE(ReadFile(dir_ / victim).find("nan"), std::string::npos);
}

TEST_F(FaultInjectionTest, OutOfRangeUserIdHitsSocialEdges) {
  Rng rng(5);
  std::string victim;
  ASSERT_TRUE(InjectDatasetFileFault(dir_.string(),
                                     DatasetFileFault::kOutOfRangeUserId, rng,
                                     &victim)
                  .ok());
  EXPECT_EQ(victim, "social.txt");
  EXPECT_NE(ReadFile(dir_ / victim).find("999999999"), std::string::npos);
}

TEST_F(FaultInjectionTest, MissingFileRemovesTheVictim) {
  Rng rng(6);
  std::string victim;
  ASSERT_TRUE(
      InjectDatasetFileFault(dir_.string(), DatasetFileFault::kMissingFile,
                             rng, &victim)
          .ok());
  EXPECT_FALSE(fs::exists(dir_ / victim));
}

TEST_F(FaultInjectionTest, GarbageHeaderRewritesTheFirstLine) {
  Rng rng(7);
  std::string victim;
  ASSERT_TRUE(
      InjectDatasetFileFault(dir_.string(), DatasetFileFault::kGarbageHeader,
                             rng, &victim)
          .ok());
  EXPECT_EQ(ReadFile(dir_ / victim).rfind("!!corrupt header!!", 0), 0u);
}

TEST_F(FaultInjectionTest, InjectingIntoEmptyDirectoryFailsCleanly) {
  Rng rng(8);
  const fs::path empty = dir_.string() + "_empty";
  fs::create_directories(empty);
  const Status status = InjectDatasetFileFault(
      empty.string(), DatasetFileFault::kTruncateFile, rng);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  fs::remove_all(empty);
}

TEST(TrajectoryFaultsTest, WithNanPositionsPoisonsSomeSamples) {
  Rng world_rng(21);
  XrWorld::Config config;
  config.num_users = 8;
  config.num_steps = 10;
  config.room_side = 5.0;
  const XrWorld clean = XrWorld::Generate(config, world_rng);

  Rng rng(22);
  const XrWorld poisoned = WithNanPositions(clean, 5, rng);
  ASSERT_EQ(poisoned.num_users(), clean.num_users());
  ASSERT_EQ(poisoned.num_steps(), clean.num_steps());
  int nan_samples = 0;
  for (int t = 0; t < poisoned.num_steps(); ++t)
    for (int u = 0; u < poisoned.num_users(); ++u)
      if (!std::isfinite(poisoned.PositionsAt(t)[u].x)) ++nan_samples;
  EXPECT_GT(nan_samples, 0);
  EXPECT_LE(nan_samples, 5);
}

TEST(TrajectoryFaultsTest, DroppedUserIsParkedFromTheDropStepOn) {
  Rng world_rng(23);
  XrWorld::Config config;
  config.num_users = 6;
  config.num_steps = 8;
  const XrWorld clean = XrWorld::Generate(config, world_rng);

  const int user = 2;
  const int drop_step = 4;
  const XrWorld dropped = WithUserDroppedMidSession(clean, user, drop_step);
  for (int t = 0; t < drop_step; ++t) {
    EXPECT_DOUBLE_EQ(dropped.PositionsAt(t)[user].x,
                     clean.PositionsAt(t)[user].x);
    EXPECT_DOUBLE_EQ(dropped.PositionsAt(t)[user].y,
                     clean.PositionsAt(t)[user].y);
  }
  for (int t = drop_step; t < dropped.num_steps(); ++t) {
    EXPECT_DOUBLE_EQ(dropped.PositionsAt(t)[user].x, 1e6);
    EXPECT_DOUBLE_EQ(dropped.PositionsAt(t)[user].y, 1e6);
  }
}

TEST(TrajectoryFaultsTest, TeleportingUserStaysInRoomAndFinite) {
  Rng world_rng(24);
  XrWorld::Config config;
  config.num_users = 5;
  config.num_steps = 12;
  config.room_side = 4.0;
  const XrWorld clean = XrWorld::Generate(config, world_rng);

  Rng rng(25);
  const XrWorld glitchy = WithTeleportingUser(clean, 1, 3, 4.0, rng);
  for (int t = 0; t < glitchy.num_steps(); ++t) {
    const Vec2& p = glitchy.PositionsAt(t)[1];
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 4.0);
  }
  // Teleports happen: the user's path is discontinuous across periods.
  EXPECT_TRUE(glitchy.PositionsAt(0)[1].x != glitchy.PositionsAt(3)[1].x ||
              glitchy.PositionsAt(0)[1].y != glitchy.PositionsAt(3)[1].y);
}

TEST(TrajectoryFaultsTest, ChurnWorldIsStructurallyValidAndFinite) {
  XrWorld::Config config;
  config.num_users = 12;
  config.num_steps = 20;
  config.room_side = 6.0;
  Rng rng(26);
  const XrWorld world = GenerateWorldWithChurn(config, 0.1, 0.3, rng);
  ASSERT_EQ(world.num_users(), config.num_users);
  ASSERT_EQ(world.num_steps(), config.num_steps);
  for (int t = 0; t < world.num_steps(); ++t)
    for (int u = 0; u < world.num_users(); ++u) {
      const Vec2& p = world.PositionsAt(t)[u];
      ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y))
          << "t=" << t << " u=" << u;
    }
}

TEST(UtilityFaultsTest, PoisonUtilitiesLeavesDiagonalAloneAndAddsNans) {
  Dataset dataset = SmallDataset();
  Rng rng(27);
  PoisonUtilities(&dataset, 6, rng);
  int nans = 0;
  for (int r = 0; r < dataset.num_users(); ++r)
    for (int c = 0; c < dataset.num_users(); ++c) {
      const bool bad_p = std::isnan(dataset.preference.At(r, c));
      const bool bad_s = std::isnan(dataset.social_presence.At(r, c));
      if (r == c) {
        EXPECT_FALSE(bad_p || bad_s);
      } else {
        nans += (bad_p ? 1 : 0) + (bad_s ? 1 : 0);
      }
    }
  EXPECT_GT(nans, 0);
  EXPECT_LE(nans, 6);
}

TEST(UtilityFaultsTest, PoisonedTrainingSessionKeepsHeldOutSessionClean) {
  Dataset dataset = SmallDataset();
  const size_t sessions_before = dataset.sessions.size();
  const XrWorld held_out = dataset.sessions.back();
  Rng rng(28);
  AppendPoisonedTrainingSession(&dataset, rng);
  ASSERT_EQ(dataset.sessions.size(), sessions_before + 1);

  // The held-out (last) session is untouched...
  const XrWorld& still_last = dataset.sessions.back();
  ASSERT_EQ(still_last.num_steps(), held_out.num_steps());
  for (int t = 0; t < held_out.num_steps(); ++t)
    for (int u = 0; u < held_out.num_users(); ++u)
      EXPECT_DOUBLE_EQ(still_last.PositionsAt(t)[u].x,
                       held_out.PositionsAt(t)[u].x);

  // ...while the inserted training session carries NaN samples.
  const XrWorld& poisoned = dataset.sessions[dataset.sessions.size() - 2];
  int nan_samples = 0;
  for (int t = 0; t < poisoned.num_steps(); ++t)
    for (int u = 0; u < poisoned.num_users(); ++u)
      if (std::isnan(poisoned.PositionsAt(t)[u].x)) ++nan_samples;
  EXPECT_GT(nan_samples, 0);
}

class ConstantRecommender : public Recommender {
 public:
  explicit ConstantRecommender(int n) : n_(n) {}
  std::string name() const override { return "Constant"; }
  std::vector<bool> Recommend(const StepContext& context) override {
    std::vector<bool> out(n_, true);
    out[context.target] = false;
    return out;
  }

 private:
  int n_;
};

TEST(FaultyRecommenderTest, CrashesAfterHealthyBudget) {
  ConstantRecommender delegate(4);
  FaultyRecommender faulty(&delegate, /*healthy_steps=*/2);
  EXPECT_EQ(faulty.name(), "Faulty(Constant)");

  StepContext context;
  context.target = 0;
  EXPECT_EQ(faulty.Recommend(context).size(), 4u);
  EXPECT_EQ(faulty.Recommend(context).size(), 4u);
  EXPECT_TRUE(faulty.Recommend(context).empty());
  EXPECT_TRUE(faulty.Recommend(context).empty());
  EXPECT_EQ(faulty.failures_emitted(), 2);
}

}  // namespace
}  // namespace testing
}  // namespace after
