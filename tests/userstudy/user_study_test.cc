#include "userstudy/user_study.h"

#include <gtest/gtest.h>

namespace after {
namespace {

/// One small study shared by all assertions (training + 5 conditions x
/// participants is the expensive part).
class UserStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UserStudyConfig config;
    config.num_participants = 12;
    config.num_steps = 21;
    config.room_side = 6.0;
    config.comurnet_iterations = 30;
    config.train_epochs = 4;
    config.train_targets_per_epoch = 3;
    config.seed = 99;
    result_ = new UserStudyResult(RunUserStudy(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static UserStudyResult* result_;
};

UserStudyResult* UserStudyTest::result_ = nullptr;

TEST_F(UserStudyTest, FiveConditions) {
  ASSERT_EQ(result_->methods.size(), 5u);
  EXPECT_EQ(result_->methods[0].method, "POSHGNN");
  EXPECT_EQ(result_->methods.back().method, "Original");
}

TEST_F(UserStudyTest, PerParticipantVectorsComplete) {
  for (const auto& m : result_->methods) {
    EXPECT_EQ(m.per_participant_after.size(), 12u);
    EXPECT_EQ(m.per_participant_satisfaction.size(), 12u);
    EXPECT_EQ(m.per_participant_preference.size(), 12u);
    EXPECT_EQ(m.per_participant_customization.size(), 12u);
    EXPECT_EQ(m.per_participant_presence.size(), 12u);
    EXPECT_EQ(m.per_participant_togetherness.size(), 12u);
  }
}

TEST_F(UserStudyTest, LikertResponsesOnScale) {
  for (const auto& m : result_->methods) {
    for (double v : m.per_participant_satisfaction) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 5.0);
      EXPECT_DOUBLE_EQ(v, std::round(v));  // integer responses
    }
  }
}

TEST_F(UserStudyTest, AveragesMatchVectors) {
  const auto& m = result_->methods[0];
  double mean = 0.0;
  for (double v : m.per_participant_satisfaction) mean += v;
  mean /= m.per_participant_satisfaction.size();
  EXPECT_NEAR(m.satisfaction_likert, mean, 1e-9);
}

TEST_F(UserStudyTest, UtilityFeedbackCorrelationsPositive) {
  // The response model is a noisy monotone readout of the utilities, so
  // correlations must come out strongly positive (Table VIII shape).
  EXPECT_GT(result_->pearson_after, 0.4);
  EXPECT_GT(result_->spearman_after, 0.4);
  EXPECT_GT(result_->pearson_preference, 0.4);
  EXPECT_GT(result_->pearson_presence, 0.4);
}

TEST_F(UserStudyTest, PValueInRange) {
  EXPECT_GE(result_->max_p_value_vs_poshgnn, 0.0);
  EXPECT_LE(result_->max_p_value_vs_poshgnn, 1.0);
}

TEST_F(UserStudyTest, UtilitiesNonNegative) {
  for (const auto& m : result_->methods) {
    EXPECT_GE(m.avg_after_per_step, 0.0);
    EXPECT_GE(m.avg_preference_per_step, 0.0);
    EXPECT_GE(m.avg_presence_per_step, 0.0);
  }
}

}  // namespace
}  // namespace after
