// One shard worker of the multi-process serving fleet: an in-process
// RecommendationServer behind the TCP wire protocol (serve/net_server.h).
// Launch N of these behind one tools/shard_router and point
// bench/net_throughput at the router (docs/serving.md has the 3-shard
// walkthrough).
//
// Two fleet layouts (docs/serving.md):
//  - Default: the shard instantiates the *full* room set with the same
//    seeds, so any shard can answer any room; the router's consistent
//    hashing merely keeps each room's traffic (and therefore its
//    simulation state and snapshot cache) on one home shard.
//  - --partitioned: the shard starts owning *nothing* and hosts only
//    the rooms the router grants it over the wire (kRoomAssign /
//    kRoomRelease, serve/shard_control.h); requests for unowned rooms
//    are answered kNotOwner so the router re-routes them. Memory and
//    tick cost then scale with the shard's share, not the fleet's size.
//
// Usage:
//   serve_shard --port=7701                    # fixed port
//   serve_shard --port=0 --port_file=p.txt     # ephemeral; port written
//                                              # to the file for scripts
// Flags: --rooms=N --users=N --threads=N --queue=N --deadline_ms=F
//        --tick_ms=F --seed=N --batch --weights=PATH --partitioned
//        --engine=f32|f64 (pin the frozen inference engine: fused f32
//                          kernels or the f64 reference, docs/inference.md;
//                          without --weights it freezes an untrained model
//                          instead of the default mutable per-stream one)
//        --max_connections=N (reactor connection cap; accepts beyond it
//                             are shed at the socket)
//        --idle_timeout_ms=F (reap connections silent this long;
//                             0 = never, the default)
//        --max_seconds=F (0 = run until SIGINT/SIGTERM)
//        --max_candidates=N (temporal candidate pruning, docs/ticking.md:
//                            rooms maintain a co-presence recency index
//                            and each request's candidate set is capped
//                            at its top-N recent contacts; 0 = off)
//
// Durable rooms (docs/durability.md, requires --partitioned):
//   --durable_dir=PATH          journal + checkpoints live here; at boot
//                               the shard replays them and re-owns its
//                               rooms (the router reconciles via
//                               kRoomRecover)
//   --checkpoint_every_ticks=N  per-room checkpoint cadence (default 256)
//   --journal_fsync             fsync the journal per append (crash-of-
//                               machine durability; heavy latency cost)

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "nn/artifact.h"
#include "serve/checkpoint.h"
#include "serve/net_server.h"
#include "serve/server.h"
#include "serve/shard_control.h"

namespace after {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Main(int argc, char** argv) {
  int port = 0, rooms = 2, users = 60, threads = 2, queue = 1024;
  int seed = 4242, checkpoint_every_ticks = 256, max_connections = 0;
  int max_candidates = 0;
  double deadline_ms = 1000.0, tick_ms = 10.0, max_seconds = 0.0;
  double idle_timeout_ms = 0.0;
  bool batch = false, partitioned = false, journal_fsync = false;
  bool engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
  std::string port_file, weights, durable_dir;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--port=%d", &value) == 1) port = value;
    else if (std::sscanf(argv[i], "--rooms=%d", &value) == 1) rooms = value;
    else if (std::sscanf(argv[i], "--users=%d", &value) == 1) users = value;
    else if (std::sscanf(argv[i], "--threads=%d", &value) == 1)
      threads = value;
    else if (std::sscanf(argv[i], "--queue=%d", &value) == 1) queue = value;
    else if (std::sscanf(argv[i], "--seed=%d", &value) == 1) seed = value;
    else if (std::sscanf(argv[i], "--deadline_ms=%lf", &fvalue) == 1)
      deadline_ms = fvalue;
    else if (std::sscanf(argv[i], "--tick_ms=%lf", &fvalue) == 1)
      tick_ms = fvalue;
    else if (std::sscanf(argv[i], "--max_seconds=%lf", &fvalue) == 1)
      max_seconds = fvalue;
    else if (std::sscanf(argv[i], "--max_candidates=%d", &value) == 1)
      max_candidates = value;
    else if (std::sscanf(argv[i], "--max_connections=%d", &value) == 1)
      max_connections = value;
    else if (std::sscanf(argv[i], "--idle_timeout_ms=%lf", &fvalue) == 1)
      idle_timeout_ms = fvalue;
    else if (std::sscanf(argv[i], "--port_file=%255s", buffer) == 1)
      port_file = buffer;
    else if (std::sscanf(argv[i], "--weights=%255s", buffer) == 1)
      weights = buffer;
    else if (std::sscanf(argv[i], "--durable_dir=%255s", buffer) == 1)
      durable_dir = buffer;
    else if (std::sscanf(argv[i], "--checkpoint_every_ticks=%d", &value) == 1)
      checkpoint_every_ticks = value;
    else if (std::sscanf(argv[i], "--engine=%255s", buffer) == 1) {
      if (!ParseInferEngine(buffer, &engine)) {
        std::fprintf(stderr, "--engine=%s: want f32 or f64\n", buffer);
        return 1;
      }
      engine_set = true;
    }
    else if (std::strcmp(argv[i], "--journal_fsync") == 0)
      journal_fsync = true;
    else if (std::strcmp(argv[i], "--batch") == 0) batch = true;
    else if (std::strcmp(argv[i], "--partitioned") == 0) partitioned = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  ModelArtifact artifact;
  const bool trained = !weights.empty();
  if (trained) {
    auto loaded = ModelArtifact::Load(weights);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--weights: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    artifact = std::move(loaded).value();
  }

  DatasetConfig config;
  config.num_users = users;
  config.num_steps = 2;  // live rooms only consume the first frame
  config.num_sessions = 1;
  config.seed = seed;
  const Dataset dataset = GenerateTimikLike(config);

  // Seeded by room id only: every shard builds the same crowd for a
  // given room, so failover / standby answers come from the same
  // statistical world. The partitioned path reuses the exact recipe
  // through the room factory below.
  const auto make_room =
      [&dataset, max_candidates](int r) -> Result<std::unique_ptr<serve::Room>> {
    serve::Room::Options room_options;
    room_options.id = r;
    room_options.mode = serve::Room::Mode::kLive;
    room_options.seed = 900 + r;
    room_options.temporal_index = max_candidates > 0;
    return serve::Room::Create(room_options, &dataset);
  };

  std::vector<std::unique_ptr<serve::Room>> room_list;
  if (!partitioned) {
    for (int r = 0; r < rooms; ++r) {
      auto created = make_room(r);
      if (!created.ok()) {
        std::fprintf(stderr, "room %d: %s\n", r,
                     created.status().ToString().c_str());
        return 1;
      }
      room_list.push_back(std::move(created).value());
    }
  }

  serve::ServerOptions server_options;
  server_options.num_threads = threads;
  server_options.queue_capacity = queue;
  server_options.default_deadline_ms = deadline_ms;
  server_options.batch_requests = batch;
  server_options.max_candidates = max_candidates;
  serve::RecommenderFactory factory;
  if (trained) {
    const ModelArtifact* artifact_ptr = &artifact;
    const InferEngine frozen_engine =
        engine_set ? engine : DefaultInferEngine();
    factory = [artifact_ptr, frozen_engine]() -> std::unique_ptr<Recommender> {
      auto frozen = FrozenPoshgnn::FromArtifact(*artifact_ptr, frozen_engine);
      if (!frozen.ok()) {
        std::fprintf(stderr, "frozen model: %s\n",
                     frozen.status().ToString().c_str());
        return nullptr;
      }
      return std::move(frozen).value();
    };
  } else if (engine_set) {
    // --engine without --weights: freeze an untrained model so the shard
    // still exercises the requested inference engine on the serving path.
    PoshgnnConfig model_config;
    model_config.seed = 42;
    auto source = std::make_shared<Poshgnn>(model_config);
    factory = [source, engine] {
      return std::make_unique<FrozenPoshgnn>(*source, engine);
    };
  } else {
    PoshgnnConfig model_config;
    model_config.seed = 42;
    factory = [model_config] {
      return std::make_unique<Poshgnn>(model_config);
    };
  }
  serve::RecommendationServer server(std::move(room_list),
                                     std::move(factory), server_options);
  serve::ShardControl control(&server, make_room);

  // Durable rooms: open the journal + checkpoint dir, recover whatever
  // a previous incarnation of this shard persisted, and wire the
  // subsystem into the tick and control planes.
  std::unique_ptr<serve::DurabilityManager> durability;
  if (!durable_dir.empty()) {
    if (!partitioned) {
      std::fprintf(stderr,
                   "--durable_dir requires --partitioned (durability is "
                   "scoped to router-granted rooms)\n");
      return 1;
    }
    serve::DurabilityManager::Options durable_options;
    durable_options.dir = durable_dir;
    durable_options.checkpoint_every_ticks = checkpoint_every_ticks;
    durable_options.journal_fsync = journal_fsync;
    auto opened = serve::DurabilityManager::Open(durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "--durable_dir: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durability = std::move(opened).value();
    durability->Attach(&server);
    server.set_durability(durability.get());
    control.set_durability(durability.get());
    auto recovered = control.RecoverFromDurable();
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("[serve_shard] recovered %zu room(s) from %s\n",
                recovered.value().size(), durable_dir.c_str());
  }

  serve::NetServerOptions net_options;
  net_options.port = port;
  if (max_connections > 0) net_options.max_connections = max_connections;
  net_options.idle_timeout_ms = idle_timeout_ms;
  serve::NetServer net(serve::NetServer::HandlerFor(&server), net_options);
  if (partitioned)
    net.set_room_control(serve::NetServer::ControlFor(&control));
  const Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    // Written atomically-enough for scripts: the single-line write
    // happens before the "listening" banner below.
    std::ofstream out(port_file);
    out << net.port() << "\n";
  }
  const std::string primary_desc =
      trained ? std::string("frozen-trained/") +
                    InferEngineName(engine_set ? engine
                                               : DefaultInferEngine())
      : engine_set ? std::string("frozen-untrained/") +
                         InferEngineName(engine)
                   : std::string("untrained-per-stream");
  if (partitioned)
    std::printf("[serve_shard] listening on %s:%d (partitioned: rooms "
                "granted by router, %d users each, %d threads, "
                "primary=%s%s)\n",
                net.host().c_str(), net.port(), users, threads,
                primary_desc.c_str(),
                batch ? ", in-tick batching" : "");
  else
    std::printf("[serve_shard] listening on %s:%d (%d rooms x %d users, "
                "%d threads, primary=%s%s)\n",
                net.host().c_str(), net.port(), rooms, users, threads,
                primary_desc.c_str(),
                batch ? ", in-tick batching" : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  WallTimer timer;
  // Tick every room on the cadence; the main thread doubles as ticker.
  while (!g_stop &&
         (max_seconds <= 0.0 || timer.ElapsedSeconds() < max_seconds)) {
    server.TickAll();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(tick_ms));
  }

  net.Shutdown();
  server.Shutdown();
  std::printf("[serve_shard] exiting after %.1f s\n%s",
              timer.ElapsedSeconds(), server.metrics().DebugString().c_str());
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
