// The fleet's single front door: listens on one port speaking the wire
// protocol (serve/wire.h) and routes every request to a backend
// tools/serve_shard worker by consistent hashing on the room id
// (serve/router.h). Transport failures eject the backend and retry the
// next shard on the ring, so killing a worker mid-run degrades to
// retried requests, not lost ones.
//
// Usage:
//   shard_router --port=7700 --backend=127.0.0.1:7701 \
//                --backend=127.0.0.1:7702
// Flags: --port=N --port_file=PATH --backend=HOST:PORT (repeatable)
//        --threads=N --queue=N (router-side worker pool + admission
//        bound; overload sheds with kResourceExhausted at the router)
//        --max_attempts=N --ejection_ms=F --health_ms=F
//        --partition_rooms=N (switch to partitioned serving: grant
//        rooms [0,N) to backends started with serve_shard --partitioned)
//        --recover_rooms=N (like --partition_rooms, but cold-restart
//        recovery: ask every backend to replay its durable state first
//        and reconcile the survivors; docs/durability.md)
//        --replication=N (warm standby copies per room, partitioned only)
//        --max_connections=N (reactor connection cap; accepts beyond it
//        are shed at the socket — raise RLIMIT_NOFILE with it for C10k)
//        --idle_timeout_ms=F (reap connections silent this long; 0 =
//        never, the default — idle XR clients are legitimate)
//        --max_seconds=F (0 = run until SIGINT/SIGTERM)

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "serve/net_server.h"
#include "serve/router.h"
#include "serve/thread_pool.h"

namespace after {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseBackend(const std::string& spec, serve::BackendAddress* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size())
    return false;
  out->host = spec.substr(0, colon);
  out->port = std::atoi(spec.c_str() + colon + 1);
  return out->port > 0;
}

int Main(int argc, char** argv) {
  int port = 0, threads = 4, queue = 1024, max_attempts = 3;
  int partition_rooms = 0, recover_rooms = 0, replication = 0;
  int max_connections = 0;
  double ejection_ms = 1000.0, health_ms = 250.0, max_seconds = 0.0;
  double idle_timeout_ms = 0.0;
  std::string port_file;
  std::vector<serve::BackendAddress> backends;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--port=%d", &value) == 1) port = value;
    else if (std::sscanf(argv[i], "--threads=%d", &value) == 1)
      threads = value;
    else if (std::sscanf(argv[i], "--queue=%d", &value) == 1) queue = value;
    else if (std::sscanf(argv[i], "--max_attempts=%d", &value) == 1)
      max_attempts = value;
    else if (std::sscanf(argv[i], "--partition_rooms=%d", &value) == 1)
      partition_rooms = value;
    else if (std::sscanf(argv[i], "--recover_rooms=%d", &value) == 1)
      recover_rooms = value;
    else if (std::sscanf(argv[i], "--replication=%d", &value) == 1)
      replication = value;
    else if (std::sscanf(argv[i], "--max_connections=%d", &value) == 1)
      max_connections = value;
    else if (std::sscanf(argv[i], "--idle_timeout_ms=%lf", &fvalue) == 1)
      idle_timeout_ms = fvalue;
    else if (std::sscanf(argv[i], "--ejection_ms=%lf", &fvalue) == 1)
      ejection_ms = fvalue;
    else if (std::sscanf(argv[i], "--health_ms=%lf", &fvalue) == 1)
      health_ms = fvalue;
    else if (std::sscanf(argv[i], "--max_seconds=%lf", &fvalue) == 1)
      max_seconds = fvalue;
    else if (std::sscanf(argv[i], "--port_file=%255s", buffer) == 1)
      port_file = buffer;
    else if (std::sscanf(argv[i], "--backend=%255s", buffer) == 1) {
      serve::BackendAddress backend;
      if (!ParseBackend(buffer, &backend)) {
        std::fprintf(stderr, "bad --backend spec: %s\n", buffer);
        return 1;
      }
      backends.push_back(std::move(backend));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (backends.empty()) {
    std::fprintf(stderr,
                 "shard_router: need at least one --backend=HOST:PORT\n");
    return 1;
  }

  serve::RouterOptions router_options;
  router_options.max_attempts = max_attempts;
  router_options.ejection_ms = ejection_ms;
  router_options.health_check_interval_ms = health_ms;
  router_options.replication_factor = replication;
  serve::ShardRouter router(backends, router_options);

  if (partition_rooms > 0 && recover_rooms > 0) {
    std::fprintf(stderr,
                 "--partition_rooms and --recover_rooms are exclusive "
                 "(fresh grant vs. durable recovery)\n");
    router.Shutdown();
    return 1;
  }
  if (partition_rooms > 0) {
    const Status enabled = router.EnablePartition(partition_rooms);
    if (!enabled.ok()) {
      std::fprintf(stderr, "EnablePartition(%d): %s\n", partition_rooms,
                   enabled.ToString().c_str());
      router.Shutdown();
      return 1;
    }
  }
  if (recover_rooms > 0) {
    const Status recovered = router.RecoverPartition(recover_rooms);
    if (!recovered.ok()) {
      std::fprintf(stderr, "RecoverPartition(%d): %s\n", recover_rooms,
                   recovered.ToString().c_str());
      router.Shutdown();
      return 1;
    }
    std::printf("[shard_router] recovered partition: %lld room(s) from "
                "durable state, %lld stale replica(s) discarded\n",
                static_cast<long long>(
                    router.metrics().recovered_rooms.load()),
                static_cast<long long>(
                    router.metrics().discarded_replicas.load()));
  }

  // The router's own worker pool decouples slow backends from the
  // connection readers and gives the front door its own admission
  // control: a full queue sheds with kResourceExhausted, mirroring the
  // in-process server's ladder step 1.
  serve::ThreadPool pool(threads, queue);
  serve::RequestHandler handler =
      [&router, &pool](const serve::FriendRequest& request,
                       std::function<void(const serve::FriendResponse&)> done) {
        auto done_ptr = std::make_shared<
            std::function<void(const serve::FriendResponse&)>>(
            std::move(done));
        const bool admitted = pool.TrySubmit([&router, request, done_ptr] {
          (*done_ptr)(router.Route(request));
        });
        if (!admitted) {
          serve::FriendResponse response;
          response.status =
              ResourceExhaustedError("router queue full; load shed");
          (*done_ptr)(response);
        }
      };

  serve::NetServerOptions net_options;
  net_options.port = port;
  if (max_connections > 0) net_options.max_connections = max_connections;
  net_options.idle_timeout_ms = idle_timeout_ms;
  serve::NetServer net(std::move(handler), net_options);
  const Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << net.port() << "\n";
  }
  std::printf("[shard_router] listening on %s:%d, %zu backend(s):",
              net.host().c_str(), net.port(), backends.size());
  for (const auto& backend : backends)
    std::printf(" %s", backend.ToString().c_str());
  if (partition_rooms > 0)
    std::printf(" (partitioned: %d rooms, replication=%d)", partition_rooms,
                replication);
  if (recover_rooms > 0)
    std::printf(" (partitioned via recovery: %d rooms, replication=%d)",
                recover_rooms, replication);
  std::printf("\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  WallTimer timer;
  while (!g_stop &&
         (max_seconds <= 0.0 || timer.ElapsedSeconds() < max_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  net.Shutdown();
  pool.Shutdown();
  router.Shutdown();
  const auto& m = router.metrics();
  std::printf("[shard_router] exiting after %.1f s: routed=%lld "
              "retried=%lld ejections=%lld exhausted=%lld "
              "link_reuse=%lld connects=%lld not_owner=%lld "
              "migrations=%lld repairs=%lld\n",
              timer.ElapsedSeconds(),
              static_cast<long long>(m.routed.load()),
              static_cast<long long>(m.retried.load()),
              static_cast<long long>(m.ejections.load()),
              static_cast<long long>(m.exhausted.load()),
              static_cast<long long>(m.link_reuse.load()),
              static_cast<long long>(m.connects.load()),
              static_cast<long long>(m.not_owner.load()),
              static_cast<long long>(m.migrations.load()),
              static_cast<long long>(m.repairs.load()));
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
