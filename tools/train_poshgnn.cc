// Trains the primary POSHGNN once and snapshots the weights into a
// versioned, checksummed model artifact (docs/model_artifacts.md) —
// the "train" leg of the train -> snapshot -> serve workflow. The
// artifact is consumed by FrozenPoshgnn::FromArtifactFile (lock-free
// shared serving) and by `bench/serve_throughput --weights=<path>`.
//
// Usage:
//   train_poshgnn --out=weights.after                # defaults below
//   train_poshgnn --out=w.after --users=60 --epochs=12 --verbose
// Flags:
//   --out=PATH          artifact destination (required)
//   --dataset=KIND      timik | smm | hub (default timik)
//   --users=N           population size (default 60, matching the
//                       serve bench's room population)
//   --steps=N --sessions=N --dataset_seed=N   generator knobs
//   --epochs=N --lr=F --targets=N --train_seed=N   trainer knobs
//   --hidden=N --beta=F --alpha=F --model_seed=N   architecture knobs
//   --verbose           per-epoch loss lines

#include <cstdio>
#include <cstring>
#include <string>

#include "core/poshgnn.h"
#include "data/dataset.h"
#include "nn/artifact.h"

namespace after {
namespace {

struct Args {
  std::string out;
  std::string dataset_kind = "timik";
  DatasetConfig data;
  TrainOptions train;
  PoshgnnConfig model;
  bool verbose = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  args->data.num_users = 60;
  args->data.num_steps = 24;
  args->data.num_sessions = 2;
  args->data.seed = 4242;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(arg, "--out=%255s", buffer) == 1) {
      args->out = buffer;
    } else if (std::sscanf(arg, "--dataset=%255s", buffer) == 1) {
      args->dataset_kind = buffer;
    } else if (std::sscanf(arg, "--users=%d", &value) == 1) {
      args->data.num_users = value;
    } else if (std::sscanf(arg, "--steps=%d", &value) == 1) {
      args->data.num_steps = value;
    } else if (std::sscanf(arg, "--sessions=%d", &value) == 1) {
      args->data.num_sessions = value;
    } else if (std::sscanf(arg, "--dataset_seed=%d", &value) == 1) {
      args->data.seed = static_cast<uint64_t>(value);
    } else if (std::sscanf(arg, "--epochs=%d", &value) == 1) {
      args->train.epochs = value;
    } else if (std::sscanf(arg, "--lr=%lf", &fvalue) == 1) {
      args->train.learning_rate = fvalue;
    } else if (std::sscanf(arg, "--targets=%d", &value) == 1) {
      args->train.targets_per_epoch = value;
    } else if (std::sscanf(arg, "--train_seed=%d", &value) == 1) {
      args->train.seed = static_cast<uint64_t>(value);
    } else if (std::sscanf(arg, "--hidden=%d", &value) == 1) {
      args->model.hidden_dim = value;
    } else if (std::sscanf(arg, "--beta=%lf", &fvalue) == 1) {
      args->model.beta = fvalue;
    } else if (std::sscanf(arg, "--alpha=%lf", &fvalue) == 1) {
      args->model.alpha = fvalue;
    } else if (std::sscanf(arg, "--model_seed=%d", &value) == 1) {
      args->model.seed = static_cast<uint64_t>(value);
    } else if (std::strcmp(arg, "--verbose") == 0) {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  if (args->out.empty()) {
    std::fprintf(stderr, "--out=PATH is required\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 1;

  std::printf("[train_poshgnn] generating %s-like dataset (%d users, "
              "%d steps, %d sessions, seed %llu)...\n",
              args.dataset_kind.c_str(), args.data.num_users,
              args.data.num_steps, args.data.num_sessions,
              static_cast<unsigned long long>(args.data.seed));
  Dataset dataset;
  if (args.dataset_kind == "timik") {
    dataset = GenerateTimikLike(args.data);
  } else if (args.dataset_kind == "smm") {
    dataset = GenerateSmmLike(args.data);
  } else if (args.dataset_kind == "hub") {
    dataset = GenerateHubsLike(args.data);
  } else {
    std::fprintf(stderr, "unknown --dataset kind '%s'\n",
                 args.dataset_kind.c_str());
    return 1;
  }
  const uint64_t fingerprint = DatasetFingerprint(dataset);
  std::printf("[train_poshgnn] dataset fingerprint %016llx\n",
              static_cast<unsigned long long>(fingerprint));

  Poshgnn model(args.model);
  args.train.verbose = args.verbose;
  std::printf("[train_poshgnn] training %s for %d epochs (lr %g, "
              "%d targets/epoch)...\n",
              model.name().c_str(), args.train.epochs,
              args.train.learning_rate, args.train.targets_per_epoch);
  model.Train(dataset, args.train);
  if (!model.last_train_status().ok()) {
    std::fprintf(stderr, "[train_poshgnn] training failed: %s\n",
                 model.last_train_status().ToString().c_str());
    return 1;
  }
  std::printf("[train_poshgnn] final epoch loss %.6f (skipped %d, "
              "rollbacks %d)\n",
              model.last_training_loss(), model.train_steps_skipped(),
              model.train_rollbacks());

  ModelArtifact artifact = model.ToArtifact();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  artifact.metadata["dataset_kind"] = args.dataset_kind;
  artifact.metadata["dataset_fingerprint"] = hex;
  artifact.metadata["dataset_users"] = std::to_string(args.data.num_users);
  artifact.metadata["train_epochs"] = std::to_string(args.train.epochs);
  artifact.metadata["train_lr"] = std::to_string(args.train.learning_rate);
  artifact.metadata["train_seed"] = std::to_string(args.train.seed);
  artifact.metadata["final_loss"] = std::to_string(model.last_training_loss());

  const Status saved = artifact.Save(args.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "[train_poshgnn] save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("[train_poshgnn] wrote %zu-parameter artifact to %s\n",
              artifact.parameters.size(), args.out.c_str());

  // Round-trip sanity: the file just written must reconstruct a frozen
  // model (same header validation path the server will run).
  auto frozen = FrozenPoshgnn::FromArtifactFile(args.out);
  if (!frozen.ok()) {
    std::fprintf(stderr, "[train_poshgnn] verification reload failed: %s\n",
                 frozen.status().ToString().c_str());
    return 1;
  }
  std::printf("[train_poshgnn] artifact verified: loads as %s\n",
              frozen.value()->name().c_str());
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
